package simd

import (
	"vransim/internal/trace"
)

// Engine executes emulated SIMD and scalar instructions against a Memory
// and records the resulting µop stream. An Engine is configured with a
// register Width; the same kernel source runs unchanged at W128, W256 or
// W512, exactly as intrinsics code recompiled for wider registers.
//
// The zero Engine is not usable; construct one with NewEngine.
type Engine struct {
	W   Width
	Mem *Memory

	rec *trace.Recorder

	// lastStoreByLine maps a 64-byte-line-granular address to the trace
	// index of the last store touching that line, so loads pick up a
	// store->load dependency (the rotate-mimic in APCM reads back data
	// it just stored, and that serialization must be visible to the
	// timing model).
	lastStoreByLine map[int64]int32

	// freeVecs is the register free-list behind AcquireVec/ReleaseVec:
	// kernels that run per batch on a long-lived engine recycle their
	// scratch registers instead of growing the Go heap on every call.
	freeVecs []*Vec
	// permTmp is the lane staging buffer PermuteW uses so a permute is
	// not a heap allocation (32 lanes covers W512).
	permTmp [32]int16
	// rotIdx caches the rotate index tables RotateLanesLeft derives, per
	// (width, rotation) — they are pure functions of both.
	rotIdx map[int][]int

	// prog, when non-nil, receives the semantic operation stream (see
	// prog.go) alongside the functional execution and trace emission.
	prog ProgSink
}

// maxFreeVecs bounds the register free-list: a misbehaving kernel that
// releases more registers than it ever re-acquires must not grow the
// list (and pin the heap) without bound. 64 registers is several times
// the deepest legitimate working set (betaExt holds 20 at once);
// releases beyond the cap are dropped and the registers left to the
// garbage collector.
const maxFreeVecs = 64

// NewEngine returns an Engine of width w over mem, recording into rec.
// rec may be nil for purely functional execution.
func NewEngine(w Width, mem *Memory, rec *trace.Recorder) *Engine {
	return &Engine{
		W:               w,
		Mem:             mem,
		rec:             rec,
		lastStoreByLine: make(map[int64]int32),
	}
}

// Recorder returns the engine's trace recorder (possibly nil).
func (e *Engine) Recorder() *trace.Recorder { return e.rec }

// TraceLen reports the number of µops emitted so far.
func (e *Engine) TraceLen() int {
	if e.rec == nil {
		return 0
	}
	return e.rec.Len()
}

// NewVec allocates a fresh zeroed register.
func (e *Engine) NewVec() *Vec {
	v := &Vec{}
	v.writer = trace.NoDep
	e.rec3(ProgOp{Kind: PClear, Dst: v})
	return v
}

// AcquireVec returns a zeroed register from the engine's free-list,
// falling back to a fresh allocation when the list is empty. Paired with
// ReleaseVec it lets a kernel that runs once per batch on a long-lived
// engine reach a steady state where no register is heap-allocated. The
// returned register is indistinguishable from a NewVec one (cleared
// lanes, no trace dependency).
func (e *Engine) AcquireVec() *Vec {
	if n := len(e.freeVecs); n > 0 {
		v := e.freeVecs[n-1]
		e.freeVecs[n-1] = nil
		e.freeVecs = e.freeVecs[:n-1]
		v.Clear()
		e.rec3(ProgOp{Kind: PClear, Dst: v})
		return v
	}
	return e.NewVec()
}

// ReleaseVec returns registers to the free-list for reuse by a later
// AcquireVec. Callers must not touch a register after releasing it.
// The list is bounded at maxFreeVecs; further releases are dropped.
func (e *Engine) ReleaseVec(vs ...*Vec) {
	for _, v := range vs {
		if len(e.freeVecs) >= maxFreeVecs {
			return
		}
		e.freeVecs = append(e.freeVecs, v)
	}
}

// FreeVecs reports the current free-list depth (observability for tests).
func (e *Engine) FreeVecs() int { return len(e.freeVecs) }

// emit records a µop and returns its trace index (or -1 when tracing is
// disabled).
func (e *Engine) emit(in trace.Inst) int32 {
	if e.rec == nil {
		return trace.NoDep
	}
	return int32(e.rec.Emit(in))
}

func dep(v *Vec) int {
	if v == nil {
		return int(trace.NoDep)
	}
	return int(v.writer)
}

// ---- vector arithmetic (VecALU class: ports 0-2 in the paper's model) ----

// lanewise applies f to each active 16-bit lane of a and b into dst and
// emits one VecALU µop.
func (e *Engine) lanewise(kind ProgKind, mnem string, dst, a, b *Vec, f func(x, y int16) int16) {
	n := e.W.Lanes16()
	for i := 0; i < n; i++ {
		dst.SetLane16(i, f(a.Lane16(i), b.Lane16(i)))
	}
	dst.writer = e.emit(trace.Inst{
		Class:    trace.VecALU,
		Mnemonic: mnem,
		Deps:     trace.Deps3(dep(a), dep(b)),
	})
	e.rec3(ProgOp{Kind: kind, Dst: dst, A: a, B: b})
}

// PAddSW is saturated signed 16-bit addition (_mm_adds_epi16).
func (e *Engine) PAddSW(dst, a, b *Vec) { e.lanewise(PAddS, "padds", dst, a, b, satAddI16) }

// PSubSW is saturated signed 16-bit subtraction (_mm_subs_epi16).
func (e *Engine) PSubSW(dst, a, b *Vec) { e.lanewise(PSubS, "psubs", dst, a, b, satSubI16) }

// PMaxSW is the signed 16-bit lane maximum (_mm_max_epi16).
func (e *Engine) PMaxSW(dst, a, b *Vec) { e.lanewise(PMaxS, "pmax", dst, a, b, maxI16) }

// PMinSW is the signed 16-bit lane minimum (_mm_min_epi16).
func (e *Engine) PMinSW(dst, a, b *Vec) { e.lanewise(PMinS, "pmin", dst, a, b, minI16) }

// bytewise applies f to each active byte of a and b into dst.
func (e *Engine) bytewise(kind ProgKind, mnem string, dst, a, b *Vec, f func(x, y byte) byte) {
	n := int(e.W)
	for i := 0; i < n; i++ {
		dst.b[i] = f(a.b[i], b.b[i])
	}
	dst.writer = e.emit(trace.Inst{
		Class:    trace.VecALU,
		Mnemonic: mnem,
		Deps:     trace.Deps3(dep(a), dep(b)),
	})
	e.rec3(ProgOp{Kind: kind, Dst: dst, A: a, B: b})
}

// PAnd is the bitwise AND (vpand / vpandd for zmm).
func (e *Engine) PAnd(dst, a, b *Vec) {
	mnem := "vpand"
	if e.W == W512 {
		mnem = "vpandd"
	}
	e.bytewise(PAnd, mnem, dst, a, b, func(x, y byte) byte { return x & y })
}

// POr is the bitwise OR (vpor / vpord for zmm).
func (e *Engine) POr(dst, a, b *Vec) {
	mnem := "vpor"
	if e.W == W512 {
		mnem = "vpord"
	}
	e.bytewise(POr, mnem, dst, a, b, func(x, y byte) byte { return x | y })
}

// PXor is the bitwise XOR (vpxor).
func (e *Engine) PXor(dst, a, b *Vec) {
	e.bytewise(PXor, "vpxor", dst, a, b, func(x, y byte) byte { return x ^ y })
}

// PAndN computes (^a) & b, matching x86 PANDN operand order.
func (e *Engine) PAndN(dst, a, b *Vec) {
	e.bytewise(PAndN, "vpandn", dst, a, b, func(x, y byte) byte { return ^x & y })
}

// PSraW shifts every active 16-bit lane of a right arithmetically by imm
// bits (psraw with an immediate).
func (e *Engine) PSraW(dst, a *Vec, imm uint) {
	n := e.W.Lanes16()
	for i := 0; i < n; i++ {
		dst.SetLane16(i, a.Lane16(i)>>imm)
	}
	dst.writer = e.emit(trace.Inst{
		Class:    trace.VecALU,
		Mnemonic: "psraw",
		Deps:     trace.Deps3(dep(a)),
	})
	e.rec3(ProgOp{Kind: PSra, Dst: dst, A: a, Imm: int64(imm)})
}

// Broadcast16 fills every active lane of dst with x (vpbroadcastw). The
// scalar source has no register dependency.
func (e *Engine) Broadcast16(dst *Vec, x int16) {
	n := e.W.Lanes16()
	for i := 0; i < n; i++ {
		dst.SetLane16(i, x)
	}
	dst.writer = e.emit(trace.Inst{Class: trace.VecALU, Mnemonic: "vpbroadcastw", Deps: trace.Deps3()})
	e.rec3(ProgOp{Kind: PBcastImm, Dst: dst, Imm: int64(x)})
}

// Broadcast16FromMem fills every active lane of dst with the int16 at
// mem[addr] (vpbroadcastw with a memory operand: one load µop).
func (e *Engine) Broadcast16FromMem(dst *Vec, addr int64) {
	x := e.Mem.ReadI16(addr)
	n := e.W.Lanes16()
	for i := 0; i < n; i++ {
		dst.SetLane16(i, x)
	}
	d1, d2 := e.loadDeps(addr, 2)
	dst.writer = e.emit(trace.Inst{
		Class:    trace.Load,
		Mnemonic: "vpbroadcastw",
		Bytes:    2,
		Addr:     addr,
		Deps:     trace.Deps3(d1, d2),
	})
	e.rec3(ProgOp{Kind: PBcastMem, Dst: dst, Addr: addr})
}

// SetImm loads an immediate lane pattern into dst, modeling a constant
// load from the literal pool (one Load µop of the register width).
func (e *Engine) SetImm(dst *Vec, lanes []int16) {
	dst.Clear()
	dst.SetLanes16(lanes)
	dst.writer = e.emit(trace.Inst{
		Class:    trace.Load,
		Mnemonic: "vmovdqa.const",
		Bytes:    int32(e.W),
		Deps:     trace.Deps3(),
	})
	e.rec3(ProgOp{Kind: PSetImm, Dst: dst, Lanes: lanes})
}

// ---- shuffles / permutes (VecShuffle class) ----

// PermuteW permutes 16-bit lanes of a into dst using the compile-time
// index vector idx (vpermw-style; idx[i] selects the source lane for
// destination lane i). Out-of-range indices select zero.
func (e *Engine) PermuteW(dst, a *Vec, idx []int) {
	n := e.W.Lanes16()
	tmp := e.permTmp[:n]
	for i := range tmp {
		tmp[i] = 0
	}
	for i := 0; i < n && i < len(idx); i++ {
		if idx[i] >= 0 && idx[i] < n {
			tmp[i] = a.Lane16(idx[i])
		}
	}
	for i := 0; i < n; i++ {
		dst.SetLane16(i, tmp[i])
	}
	dst.writer = e.emit(trace.Inst{
		Class:    trace.VecShuffle,
		Mnemonic: "vpermw",
		Deps:     trace.Deps3(dep(a)),
	})
	e.rec3(ProgOp{Kind: PPermute, Dst: dst, A: a, Idx: idx})
}

// RotateLanesLeft rotates the active 16-bit lanes of a left by k lanes
// into dst. No single x86 instruction provides this (the paper's Figure 12
// motivates the rotate-mimic); it is exposed for the explicit-rotate
// ablation and costs one shuffle µop.
func (e *Engine) RotateLanesLeft(dst, a *Vec, k int) {
	n := e.W.Lanes16()
	k = ((k % n) + n) % n
	idx, ok := e.rotIdx[k]
	if !ok {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = (i + k) % n
		}
		if e.rotIdx == nil {
			e.rotIdx = make(map[int][]int)
		}
		e.rotIdx[k] = idx
	}
	e.PermuteW(dst, a, idx)
	if e.rec != nil {
		// PermuteW already emitted; relabel for readability.
		insts := e.rec.Insts()
		insts[len(insts)-1].Mnemonic = "vprot.mimic"
	}
}

// VExtractI128 copies 128-bit half sel (0 or 1) of the 256-bit register a
// into the low half of dst, zeroing the rest (vextracti128). It is the
// extra movement step the original mechanism needs on ymm registers.
func (e *Engine) VExtractI128(dst, a *Vec, sel int) {
	var tmp [16]byte
	copy(tmp[:], a.b[16*sel:16*sel+16])
	dst.b = [64]byte{}
	copy(dst.b[:16], tmp[:])
	dst.writer = e.emit(trace.Inst{
		Class:    trace.VecShuffle,
		Mnemonic: "vextracti128",
		Deps:     trace.Deps3(dep(a)),
	})
	e.rec3(ProgOp{Kind: PExt128, Dst: dst, A: a, Imm: int64(sel)})
}

// VExtractI32x8 copies 256-bit half sel (0 or 1) of the 512-bit register a
// into the low 256 bits of dst and zeroes the upper bits, matching the
// paper's description of 'vextracti32x8 $0/1': selecting the low half
// destroys the upper half of the destination, forcing a reload
// (vmovdqa64) before the upper half can be processed.
func (e *Engine) VExtractI32x8(dst, a *Vec, sel int) {
	var tmp [32]byte
	copy(tmp[:], a.b[32*sel:32*sel+32])
	dst.b = [64]byte{}
	copy(dst.b[:32], tmp[:])
	dst.writer = e.emit(trace.Inst{
		Class:    trace.VecShuffle,
		Mnemonic: "vextracti32x8",
		Deps:     trace.Deps3(dep(a)),
	})
	e.rec3(ProgOp{Kind: PExt256, Dst: dst, A: a, Imm: int64(sel)})
}

// ---- memory operations (Load / Store classes: ports 4-5 / 6-7) ----

const lineShift = 6 // 64-byte cache lines for store->load dependencies

func (e *Engine) loadDeps(addr int64, n int) (int, int) {
	d1, d2 := int(trace.NoDep), int(trace.NoDep)
	if e.rec == nil {
		return d1, d2
	}
	first := addr >> lineShift
	last := (addr + int64(n) - 1) >> lineShift
	if idx, ok := e.lastStoreByLine[first]; ok {
		d1 = int(idx)
	}
	if last != first {
		if idx, ok := e.lastStoreByLine[last]; ok {
			d2 = int(idx)
		}
	}
	return d1, d2
}

func (e *Engine) noteStore(addr int64, n int, idx int32) {
	if e.rec == nil {
		return
	}
	for line := addr >> lineShift; line <= (addr+int64(n)-1)>>lineShift; line++ {
		e.lastStoreByLine[line] = idx
	}
}

// LoadVec loads a full active-width register from mem[addr]
// (vmovdqa/vmovdqa64). Unaligned access is permitted, as with vmovdqu.
func (e *Engine) LoadVec(dst *Vec, addr int64) {
	n := int(e.W)
	dst.b = [64]byte{}
	copy(dst.b[:n], e.Mem.data[addr:addr+int64(n)])
	d1, d2 := e.loadDeps(addr, n)
	dst.writer = e.emit(trace.Inst{
		Class:    trace.Load,
		Mnemonic: "vmovdqu",
		Bytes:    int32(n),
		Addr:     addr,
		Deps:     trace.Deps3(d1, d2),
	})
	e.rec3(ProgOp{Kind: PLoad, Dst: dst, Addr: addr, Imm: int64(n)})
}

// StoreVec stores the full active width of src to mem[addr].
func (e *Engine) StoreVec(addr int64, src *Vec) {
	n := int(e.W)
	copy(e.Mem.data[addr:addr+int64(n)], src.b[:n])
	idx := e.emit(trace.Inst{
		Class:    trace.Store,
		Mnemonic: "vmovdqu",
		Bytes:    int32(n),
		Addr:     addr,
		Deps:     trace.Deps3(dep(src)),
	})
	e.noteStore(addr, n, idx)
	e.rec3(ProgOp{Kind: PStore, A: src, Addr: addr, Imm: int64(n)})
}

// LoadVec128 loads exactly 128 bits into the low lanes of dst regardless
// of the engine width. State-parallel kernels (the 8-state turbo
// recursions) stay xmm-sized even when the rest of the pipeline uses
// wider registers.
func (e *Engine) LoadVec128(dst *Vec, addr int64) {
	dst.b = [64]byte{}
	copy(dst.b[:16], e.Mem.data[addr:addr+16])
	d1, d2 := e.loadDeps(addr, 16)
	dst.writer = e.emit(trace.Inst{
		Class:    trace.Load,
		Mnemonic: "movdqu",
		Bytes:    16,
		Addr:     addr,
		Deps:     trace.Deps3(d1, d2),
	})
	e.rec3(ProgOp{Kind: PLoad, Dst: dst, Addr: addr, Imm: 16})
}

// StoreVec128 stores exactly the low 128 bits of src to mem[addr].
func (e *Engine) StoreVec128(addr int64, src *Vec) {
	copy(e.Mem.data[addr:addr+16], src.b[:16])
	idx := e.emit(trace.Inst{
		Class:    trace.Store,
		Mnemonic: "movdqu",
		Bytes:    16,
		Addr:     addr,
		Deps:     trace.Deps3(dep(src)),
	})
	e.noteStore(addr, 16, idx)
	e.rec3(ProgOp{Kind: PStore, A: src, Addr: addr, Imm: 16})
}

// PExtrWToMem extracts 16-bit lane of src directly to memory (pextrw with
// a memory destination): the original data arrangement's workhorse. It
// moves only 2 bytes per µop and occupies a store port, which is exactly
// the inefficiency the paper characterizes.
func (e *Engine) PExtrWToMem(addr int64, src *Vec, lane int) {
	e.Mem.WriteI16(addr, src.Lane16(lane))
	idx := e.emit(trace.Inst{
		Class:    trace.Store,
		Mnemonic: "pextrw",
		Bytes:    2,
		Addr:     addr,
		Deps:     trace.Deps3(dep(src)),
	})
	e.noteStore(addr, 2, idx)
	e.rec3(ProgOp{Kind: PExtrW, A: src, Addr: addr, Imm: int64(lane)})
}

// PInsrWFromMem loads a 16-bit value from memory into lane of dst
// (pinsrw), a 2-byte load µop.
func (e *Engine) PInsrWFromMem(dst *Vec, addr int64, lane int) {
	d1, d2 := e.loadDeps(addr, 2)
	dst.SetLane16(lane, e.Mem.ReadI16(addr))
	dst.writer = e.emit(trace.Inst{
		Class:    trace.Load,
		Mnemonic: "pinsrw",
		Bytes:    2,
		Addr:     addr,
		Deps:     trace.Deps3(d1, d2, dep(dst)),
	})
	e.rec3(ProgOp{Kind: PInsrW, Dst: dst, Addr: addr, Imm: int64(lane)})
}

// ---- scalar and control-flow modeling ----

// EmitScalar emits n independent scalar ALU µops named mnem. Used by the
// scalar modules (OFDM, protocol bookkeeping) to expose their compute to
// the timing model.
func (e *Engine) EmitScalar(mnem string, n int) {
	for i := 0; i < n; i++ {
		e.emit(trace.Inst{Class: trace.ScalarALU, Mnemonic: mnem, Deps: trace.Deps3()})
	}
}

// EmitScalarChain emits n serially dependent scalar ALU µops (each
// depends on the previous), modeling a loop-carried dependency.
func (e *Engine) EmitScalarChain(mnem string, n int) {
	prev := int(trace.NoDep)
	for i := 0; i < n; i++ {
		idx := e.emit(trace.Inst{
			Class:    trace.ScalarALU,
			Mnemonic: mnem,
			Deps:     trace.Deps3(prev),
		})
		prev = int(idx)
	}
}

// EmitScalarLoad emits a scalar load of nbytes at addr.
func (e *Engine) EmitScalarLoad(mnem string, addr int64, nbytes int) {
	d1, d2 := e.loadDeps(addr, nbytes)
	e.emit(trace.Inst{
		Class:    trace.Load,
		Mnemonic: mnem,
		Bytes:    int32(nbytes),
		Addr:     addr,
		Deps:     trace.Deps3(d1, d2),
	})
}

// EmitScalarStore emits a scalar store of nbytes at addr.
func (e *Engine) EmitScalarStore(mnem string, addr int64, nbytes int) {
	idx := e.emit(trace.Inst{
		Class:    trace.Store,
		Mnemonic: mnem,
		Bytes:    int32(nbytes),
		Addr:     addr,
		Deps:     trace.Deps3(),
	})
	e.noteStore(addr, nbytes, idx)
}

// EmitBranch emits one branch µop.
func (e *Engine) EmitBranch(mnem string) {
	e.emit(trace.Inst{Class: trace.Branch, Mnemonic: mnem, Deps: trace.Deps3()})
}

// ---- recordable scalar element helpers ----
//
// Scalar-tail work inside SIMD kernels (interleavers, arrangement
// remainders, gamma/extrinsic tails) historically mixed direct Memory
// access with loose EmitScalar* µop emission, which the replay compiler
// cannot see. These helpers perform the same memory effect and emit the
// same µop stream as the inline code they replaced — traced experiments
// observe an identical trace — while also recording one semantic ProgOp.

// CopyI16 copies the int16 at src to dst, emitting the scalar load+store
// µop pair the element-copy loops have always emitted.
func (e *Engine) CopyI16(dst, src int64) {
	e.Mem.WriteI16(dst, e.Mem.ReadI16(src))
	e.EmitScalarLoad("movzx", src, 2)
	e.EmitScalarStore("mov", dst, 2)
	e.rec3(ProgOp{Kind: PCopy16, Addr: dst, Addr2: src})
}

// sati16 saturates a 32-bit intermediate to int16 range, matching
// saturating SIMD arithmetic on the scalar tail path.
func sati16(x int32) int16 {
	if x > 32767 {
		return 32767
	}
	if x < -32768 {
		return -32768
	}
	return int16(x)
}

// ScalarGammaPoint computes one scalar branch-metric point:
//
//	mem[g0] = sat16(mem[s] + mem[la] + mem[p])
//	mem[g1] = sat16(mem[s] + mem[la] - mem[p])
//
// with the µop stream of the historical inline tail (two adds, one
// scalar load, two scalar stores).
func (e *Engine) ScalarGammaPoint(g0, g1, s, p, la int64) {
	sv := e.Mem.ReadI16(s)
	pv := e.Mem.ReadI16(p)
	lv := e.Mem.ReadI16(la)
	sa := int32(sv) + int32(lv)
	e.Mem.WriteI16(g0, sati16(sa+int32(pv)))
	e.Mem.WriteI16(g1, sati16(sa-int32(pv)))
	e.EmitScalar("add", 2)
	e.EmitScalarLoad("mov", la, 2)
	e.EmitScalarStore("mov", g0, 2)
	e.EmitScalarStore("mov", g1, 2)
	e.rec3(ProgOp{Kind: PGammaPoint, Addr: g0, Addr2: g1, Xa: [3]int64{s, p, la}})
}

// ScalarExtPoint computes one scalar extrinsic point:
//
//	mem[dst] = clamp(mem[d]>>1 - mem[s] - mem[la], ±clamp)
//
// with the µop stream of the historical inline tail (two subs, one
// scalar load, one scalar store).
func (e *Engine) ScalarExtPoint(dst, s, la, d int64, clamp int16) {
	sv := e.Mem.ReadI16(s)
	lv := e.Mem.ReadI16(la)
	dV := e.Mem.ReadI16(d)
	x := int32(dV>>1) - int32(sv) - int32(lv)
	if x > int32(clamp) {
		x = int32(clamp)
	}
	if x < -int32(clamp) {
		x = -int32(clamp)
	}
	e.Mem.WriteI16(dst, int16(x))
	e.EmitScalar("sub", 2)
	e.EmitScalarLoad("mov", d, 2)
	e.EmitScalarStore("mov", dst, 2)
	e.rec3(ProgOp{Kind: PExtPoint, Addr: dst, Imm: int64(clamp), Xa: [3]int64{s, la, d}})
}
