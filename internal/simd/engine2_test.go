package simd

import (
	"testing"
	"testing/quick"

	"vransim/internal/trace"
)

func TestPSraW(t *testing.T) {
	e := newTestEngine(W128)
	a, d := e.NewVec(), e.NewVec()
	a.SetLanes16([]int16{-8, 8, -1, 1, -32768, 32767, 0, -100})
	e.PSraW(d, a, 1)
	want := []int16{-4, 4, -1, 0, -16384, 16383, 0, -50}
	for i, w := range want {
		if got := d.Lane16(i); got != w {
			t.Errorf("lane %d: %d>>1 = %d, want %d", i, a.Lane16(i), got, w)
		}
	}
	e.PSraW(d, a, 15)
	for i := 0; i < 8; i++ {
		want := int16(0)
		if a.Lane16(i) < 0 {
			want = -1
		}
		if d.Lane16(i) != want {
			t.Errorf("lane %d: >>15 sign fill wrong", i)
		}
	}
}

// Property: PSraW agrees with Go's arithmetic shift on every lane.
func TestPSraWProperty(t *testing.T) {
	f := func(x int16, shRaw uint8) bool {
		sh := uint(shRaw % 16)
		e := NewEngine(W128, NewMemory(64), nil)
		a, d := e.NewVec(), e.NewVec()
		a.SetLane16(3, x)
		e.PSraW(d, a, sh)
		return d.Lane16(3) == x>>sh
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBroadcast16FromMem(t *testing.T) {
	for _, w := range Widths {
		e := newTestEngine(w)
		addr := e.Mem.Alloc(8, 8)
		e.Mem.WriteI16(addr+2, -777)
		d := e.NewVec()
		e.Broadcast16FromMem(d, addr+2)
		for i := 0; i < w.Lanes16(); i++ {
			if d.Lane16(i) != -777 {
				t.Fatalf("%v lane %d = %d", w, i, d.Lane16(i))
			}
		}
		// Must be a 2-byte load µop.
		insts := e.Recorder().Insts()
		last := insts[len(insts)-1]
		if last.Class != trace.Load || last.Bytes != 2 {
			t.Errorf("broadcast emitted %v/%d bytes, want load/2", last.Class, last.Bytes)
		}
	}
}

func TestBroadcastFromMemSeesRecentStore(t *testing.T) {
	e := newTestEngine(W128)
	addr := e.Mem.Alloc(64, 64)
	v := e.NewVec()
	e.Broadcast16(v, 42)
	e.StoreVec(addr, v)
	d := e.NewVec()
	e.Broadcast16FromMem(d, addr)
	if d.Lane16(0) != 42 {
		t.Fatal("functional store->broadcast failed")
	}
	insts := e.Recorder().Insts()
	last := insts[len(insts)-1]
	storeIdx := int32(len(insts) - 2)
	if last.Deps[0] != storeIdx && last.Deps[1] != storeIdx {
		t.Errorf("broadcast deps %v missing store %d", last.Deps, storeIdx)
	}
}

func TestLoadStoreVec128AtWiderWidths(t *testing.T) {
	for _, w := range []Width{W256, W512} {
		e := newTestEngine(w)
		addr := e.Mem.Alloc(64, 64)
		src := e.NewVec()
		for i := 0; i < w.Lanes16(); i++ {
			src.SetLane16(i, int16(100+i))
		}
		e.StoreVec128(addr, src)
		// Only 16 bytes written.
		if e.Mem.ReadI16(addr+14) != 107 {
			t.Errorf("%v: lane 7 not stored", w)
		}
		if e.Mem.ReadI16(addr+16) != 0 {
			t.Errorf("%v: StoreVec128 wrote past 128 bits", w)
		}
		dst := e.NewVec()
		dst.SetLane16(20, 999)
		e.LoadVec128(dst, addr)
		for i := 0; i < 8; i++ {
			if dst.Lane16(i) != int16(100+i) {
				t.Errorf("%v: lane %d wrong after LoadVec128", w, i)
			}
		}
		if dst.Lane16(20) != 0 {
			t.Errorf("%v: LoadVec128 should zero upper lanes", w)
		}
		// Byte accounting: both µops must say 16 bytes.
		for _, in := range e.Recorder().Insts() {
			if in.Mnemonic == "movdqu" && in.Bytes != 16 {
				t.Errorf("%v: movdqu bytes = %d", w, in.Bytes)
			}
		}
	}
}

func TestPInsrWFromMem(t *testing.T) {
	e := newTestEngine(W128)
	addr := e.Mem.Alloc(16, 16)
	e.Mem.WriteI16(addr+4, 1234)
	d := e.NewVec()
	d.SetLanes16([]int16{1, 2, 3, 4, 5, 6, 7, 8})
	e.PInsrWFromMem(d, addr+4, 5)
	want := []int16{1, 2, 3, 4, 5, 1234, 7, 8}
	for i, wv := range want {
		if d.Lane16(i) != wv {
			t.Errorf("lane %d = %d, want %d (insert must preserve others)", i, d.Lane16(i), wv)
		}
	}
}

func TestSetImmEmitsConstantLoad(t *testing.T) {
	e := newTestEngine(W256)
	v := e.NewVec()
	e.SetImm(v, []int16{1, -1, 2})
	insts := e.Recorder().Insts()
	in := insts[len(insts)-1]
	if in.Class != trace.Load || in.Mnemonic != "vmovdqa.const" || in.Bytes != 32 {
		t.Errorf("SetImm emitted %v %q %dB", in.Class, in.Mnemonic, in.Bytes)
	}
	if v.Lane16(1) != -1 || v.Lane16(3) != 0 {
		t.Error("SetImm lane contents wrong")
	}
}
