package simd

import "testing"

// TestAcquireVecSemantics: a recycled register must be indistinguishable
// from a fresh one — zero lanes, no dependency — even when released dirty.
func TestAcquireVecSemantics(t *testing.T) {
	e := NewEngine(W512, NewMemory(1<<12), nil)
	v := e.AcquireVec()
	e.Broadcast16(v, 77)
	e.ReleaseVec(v)
	if e.FreeVecs() != 1 {
		t.Fatalf("free list holds %d, want 1", e.FreeVecs())
	}
	got := e.AcquireVec()
	if got != v {
		t.Error("AcquireVec did not reuse the released register")
	}
	for _, lane := range got.Lanes16(W512.Lanes16()) {
		if lane != 0 {
			t.Fatalf("recycled register not cleared: %v", got.Lanes16(W512.Lanes16()))
		}
	}
	if e.FreeVecs() != 0 {
		t.Errorf("free list holds %d after acquire, want 0", e.FreeVecs())
	}
	// Empty pool falls back to a fresh register.
	fresh := e.AcquireVec()
	if fresh == got {
		t.Error("empty pool handed out an in-use register")
	}
}

// TestEngineOpsNoAlloc: the emulated ops a steady-state decode leans on
// must be allocation-free on an untraced engine — PermuteW's index
// scratch and RotateLanesLeft's tables were the per-op offenders.
func TestEngineOpsNoAlloc(t *testing.T) {
	e := NewEngine(W512, NewMemory(1<<12), nil)
	a, b, dst := e.AcquireVec(), e.AcquireVec(), e.AcquireVec()
	e.Broadcast16(a, 3)
	e.Broadcast16(b, 9)
	idx := make([]int, W512.Lanes16())
	for i := range idx {
		idx[i] = (i + 5) % len(idx)
	}
	e.RotateLanesLeft(dst, a, 1) // warm the rotation table cache
	avg := testing.AllocsPerRun(100, func() {
		e.PermuteW(dst, a, idx)
		e.PAddSW(dst, dst, b)
		e.PMaxSW(dst, dst, a)
		e.RotateLanesLeft(dst, dst, 1)
		e.SetImm(dst, nil)
		v := e.AcquireVec()
		e.ReleaseVec(v)
	})
	if avg != 0 {
		t.Errorf("untraced engine ops allocate %.1f objects/op, want 0", avg)
	}
}

// TestReleaseVecBounded: the free-list must stop growing at
// maxFreeVecs — a kernel that leaks releases (more ReleaseVec than
// AcquireVec) must not pin an unbounded pile of dead registers. Dropped
// registers simply fall to the garbage collector; acquires past the
// stored depth fall back to fresh allocation and stay correct.
func TestReleaseVecBounded(t *testing.T) {
	e := NewEngine(W512, NewMemory(1<<12), nil)
	for i := 0; i < 3*maxFreeVecs; i++ {
		e.ReleaseVec(&Vec{})
	}
	if got := e.FreeVecs(); got != maxFreeVecs {
		t.Fatalf("free list holds %d after %d releases, want cap %d",
			got, 3*maxFreeVecs, maxFreeVecs)
	}
	// A batched release straddling the cap keeps the prefix and drops
	// the rest.
	e2 := NewEngine(W512, NewMemory(1<<12), nil)
	vs := make([]*Vec, maxFreeVecs+10)
	for i := range vs {
		vs[i] = &Vec{}
	}
	e2.ReleaseVec(vs...)
	if got := e2.FreeVecs(); got != maxFreeVecs {
		t.Fatalf("batched release stored %d, want cap %d", got, maxFreeVecs)
	}
	// The capped pool still recycles: acquire drains it LIFO and every
	// register comes back clean.
	seen := make(map[*Vec]bool)
	for i := 0; i < maxFreeVecs; i++ {
		v := e2.AcquireVec()
		if seen[v] {
			t.Fatal("free list handed out the same register twice")
		}
		seen[v] = true
	}
	if e2.FreeVecs() != 0 {
		t.Fatalf("pool not drained: %d left", e2.FreeVecs())
	}
	if v := e2.AcquireVec(); seen[v] {
		t.Error("empty pool reissued a live register")
	}
}

// TestMemoryRemaining tracks the bump allocator's headroom through
// aligned allocations and a reset.
func TestMemoryRemaining(t *testing.T) {
	m := NewMemory(1 << 10)
	if m.Remaining() != 1<<10 {
		t.Fatalf("fresh arena has %d remaining, want %d", m.Remaining(), 1<<10)
	}
	m.Alloc(100, 64)
	if got := m.Remaining(); got != 1<<10-100 {
		t.Errorf("after Alloc(100): %d remaining, want %d", got, 1<<10-100)
	}
	m.Alloc(4, 64) // aligns next to 128 first
	if got := m.Remaining(); got != 1<<10-132 {
		t.Errorf("after aligned Alloc(4): %d remaining, want %d", got, 1<<10-132)
	}
	m.AllocReset()
	if m.Remaining() != 1<<10 {
		t.Errorf("after reset: %d remaining, want full arena", m.Remaining())
	}
}
