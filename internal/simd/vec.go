// Package simd emulates the subset of the x86 SIMD instruction set that
// the vRAN pipeline uses (SSE128 / AVX256 / AVX512 generations), in pure
// Go. Every operation has two effects:
//
//  1. a bit-exact functional effect on emulated vector registers and a
//     flat emulated memory, so algorithms built on the package (turbo
//     decoding, data arrangement, …) can be tested for correctness; and
//  2. the emission of a µop into a trace (internal/trace) carrying the
//     operation's execution class and true register dataflow
//     dependencies, so the timing simulator (internal/uarch) can replay
//     the exact instruction stream against a port model.
//
// The register width in use is a property of the Engine, mirroring how
// the same source compiles against xmm, ymm or zmm registers.
package simd

import (
	"fmt"

	"vransim/internal/trace"
)

// Width is the active SIMD register width in bytes.
type Width int

// Supported register widths. The names follow the paper's usage: SSE128
// (xmm), AVX256 (ymm) and AVX512 (zmm).
const (
	W128 Width = 16
	W256 Width = 32
	W512 Width = 64
)

// Widths lists all supported widths in increasing order, convenient for
// experiment sweeps.
var Widths = []Width{W128, W256, W512}

// Bits returns the register width in bits.
func (w Width) Bits() int { return int(w) * 8 }

// Lanes16 returns the number of 16-bit lanes in a register of width w.
func (w Width) Lanes16() int { return int(w) / 2 }

// String names the width the way the paper does.
func (w Width) String() string {
	switch w {
	case W128:
		return "SSE128"
	case W256:
		return "AVX256"
	case W512:
		return "AVX512"
	}
	return fmt.Sprintf("W%d", w.Bits())
}

// RegName returns the x86 register-file name for the width.
func (w Width) RegName() string {
	switch w {
	case W128:
		return "xmm"
	case W256:
		return "ymm"
	case W512:
		return "zmm"
	}
	return "?mm"
}

// Vec is one emulated vector register. It always reserves the maximum
// 512 bits of storage; the Engine's Width decides how many bytes are
// active. A Vec must be obtained from Engine.NewVec (or be zero-valued)
// and is not safe for concurrent use.
type Vec struct {
	b [64]byte
	// writer is the trace index of the instruction that last wrote this
	// register, or trace.NoDep. It implements dataflow dependency
	// tracking without a rename table.
	writer int32
}

// Bytes returns the first n bytes of the register's storage.
func (v *Vec) Bytes(n int) []byte { return v.b[:n] }

// Lane16 returns the signed 16-bit value in lane i.
func (v *Vec) Lane16(i int) int16 {
	return int16(uint16(v.b[2*i]) | uint16(v.b[2*i+1])<<8)
}

// SetLane16 stores a signed 16-bit value into lane i. It is a test/setup
// helper and does not emit a µop.
func (v *Vec) SetLane16(i int, x int16) {
	v.b[2*i] = byte(uint16(x))
	v.b[2*i+1] = byte(uint16(x) >> 8)
}

// Lanes16 copies the first n 16-bit lanes into a fresh slice.
func (v *Vec) Lanes16(n int) []int16 {
	out := make([]int16, n)
	for i := range out {
		out[i] = v.Lane16(i)
	}
	return out
}

// SetLanes16 fills lanes from xs. It is a test/setup helper and does not
// emit a µop.
func (v *Vec) SetLanes16(xs []int16) {
	for i, x := range xs {
		v.SetLane16(i, x)
	}
}

// Clear zeroes the register without emitting a µop.
func (v *Vec) Clear() {
	v.b = [64]byte{}
	v.writer = trace.NoDep
}

// satAddI16 returns a+b with signed 16-bit saturation, the semantics of
// the x86 PADDSW instruction.
func satAddI16(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

// satSubI16 returns a-b with signed 16-bit saturation (PSUBSW).
func satSubI16(a, b int16) int16 {
	s := int32(a) - int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

func maxI16(a, b int16) int16 {
	if a > b {
		return a
	}
	return b
}

func minI16(a, b int16) int16 {
	if a < b {
		return a
	}
	return b
}
