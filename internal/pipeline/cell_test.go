package pipeline

import (
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/transport"
)

func cellBase() CellConfig {
	return CellConfig{
		UEs: 3, TTIs: 400, TTIUs: 1000,
		PacketBytes: 256, Proto: transport.UDP,
		ArrivalPerTTI: 0.2,
		W:             simd.W128, Strategy: core.StrategyAPCM,
		Cores: 1, Seed: 9,
	}
}

func TestRunCellLightLoad(t *testing.T) {
	res, err := RunCell(cellBase())
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled == 0 {
		t.Fatal("no packets scheduled")
	}
	if res.Dropped > res.Scheduled/20 {
		t.Errorf("dropped %d/%d under light load", res.Dropped, res.Scheduled)
	}
	if res.MeanLatencyUs < res.PerPacketUs-1e-6 {
		t.Errorf("mean latency %.1f below processing cost %.1f", res.MeanLatencyUs, res.PerPacketUs)
	}
	if res.P99LatencyUs < res.MeanLatencyUs {
		t.Error("p99 below mean")
	}
}

func TestRunCellFairness(t *testing.T) {
	cfg := cellBase()
	cfg.ArrivalPerTTI = 0.9 // everyone always backlogged
	cfg.TTIs = 600
	res, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.PerUE[0], res.PerUE[0]
	for _, n := range res.PerUE {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 2 {
		t.Errorf("round-robin unfair: per-UE deliveries %v", res.PerUE)
	}
}

func TestRunCellAPCMBeatsOriginal(t *testing.T) {
	cfgO := cellBase()
	cfgO.Strategy = core.StrategyExtract
	cfgA := cellBase()
	ro, err := RunCell(cfgO)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := RunCell(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if ra.PerPacketUs >= ro.PerPacketUs {
		t.Errorf("APCM per-packet %.1fus not below original %.1fus", ra.PerPacketUs, ro.PerPacketUs)
	}
	if ra.MeanLatencyUs >= ro.MeanLatencyUs {
		t.Errorf("APCM mean latency %.1fus not below original %.1fus", ra.MeanLatencyUs, ro.MeanLatencyUs)
	}
}

func TestRunCellValidation(t *testing.T) {
	cfg := cellBase()
	cfg.UEs = 0
	if _, err := RunCell(cfg); err == nil {
		t.Error("expected validation error")
	}
}
