package pipeline

import (
	"fmt"

	"vransim/internal/l2"
	"vransim/internal/phy"
	"vransim/internal/simd"
	"vransim/internal/trace"
	"vransim/internal/transport"
	"vransim/internal/turbo"
)

// RunDownlink executes one downlink packet: the EPC delivers an IP
// packet to the eNB, whose transmit processing (traced) builds the
// radio frame; a functional UE receiver verifies delivery.
func RunDownlink(cfg Config) (*Result, error) {
	r := &runner{cfg: cfg}
	mem := simd.NewMemory(64 << 20)
	r.eng = simd.NewEngine(cfg.W, mem, trace.NewRecorder(1<<20))

	// Internet side generates the packet; the EPC tunnels it in.
	gen := transport.NewGenerator(cfg.Proto, cfg.Seed)
	ipPacket, err := gen.Next(cfg.PacketBytes)
	if err != nil {
		return nil, err
	}
	epc := &transport.EPCPath{SGWTEID: 0x11, PGWTEID: 0x21, HopDelayUs: 30}

	// ---- eNB transmit side (traced) ----
	var arrived []byte
	r.section("gtp", func() {
		out, err2 := epc.Traverse(ipPacket)
		if err2 != nil {
			err = err2
			return
		}
		arrived = out
		for h := 0; h < 2; h++ {
			r.eng.EmitScalarLoad("mov", int64(h*64), 8)
			r.eng.EmitScalar("add", 4)
			r.eng.EmitScalarStore("mov", int64(h*64), 8)
		}
	})
	if err != nil {
		return nil, err
	}

	var tb l2.TransportBlock
	var tbsBytes int
	r.section("l2", func() {
		pdcp := &l2.PDCP{Eng: r.eng}
		rlc := l2.NewRLC(9000)
		pdu := pdcp.Encapsulate(arrived)
		var rlcPDUs [][]byte
		for _, s := range rlc.Segment(pdu) {
			rlcPDUs = append(rlcPDUs, s.Marshal())
		}
		for _, p := range rlcPDUs {
			tbsBytes += l2.MACHeaderLen + len(p)
		}
		mac := l2.NewMAC(tbsBytes)
		var used int
		tb, used = mac.BuildTB(rlcPDUs)
		if used != len(rlcPDUs) {
			err = fmt.Errorf("pipeline: MAC packed %d/%d PDUs", used, len(rlcPDUs))
		}
	})
	if err != nil {
		return nil, err
	}

	// DCI for the downlink assignment.
	r.section("dci", func() {
		dci := phy.DCI{Payload: make([]byte, 31)}
		coded := phy.EncodeDCI(dci)
		_ = coded
		r.eng.EmitScalar("xor", 3*(31+16))
		r.eng.EmitScalarStore("mov", 0, 8)
	})

	// Channel coding.
	withCRC := phy.AppendCRC(tb.Bits, phy.CRC24APoly, 24)
	seg, err := phy.Segment(len(withCRC))
	if err != nil {
		return nil, err
	}
	blocks, err := seg.Split(withCRC)
	if err != nil {
		return nil, err
	}
	code, err := turbo.NewCode(seg.K)
	if err != nil {
		return nil, err
	}
	ePerBlock := 3 * seg.K
	d := seg.K + 4
	rm := phy.NewRateMatcher(d)
	res := &Result{TBBytes: tb.Bytes, CodeBlocks: seg.C, InfoBits: seg.C * seg.K}

	var coded []byte
	rm.Eng = r.eng
	for _, blk := range blocks {
		var cw *turbo.Codeword
		r.section("turboenc", func() {
			cw, err = code.EncodeTraced(r.eng, blk)
		})
		if err != nil {
			return nil, err
		}
		r.section("ratematch", func() {
			s0, s1, s2 := padStreams(cw, d)
			sel, err2 := rm.Match(s0, s1, s2, ePerBlock, 0)
			if err2 != nil {
				err = err2
				return
			}
			coded = append(coded, sel...)
		})
		if err != nil {
			return nil, err
		}
	}

	// Scrambling.
	var scrambled []byte
	r.section("scramble", func() {
		scr := phy.NewScrambler(phy.ScrambleInit(0x4321, 0, 4, 9), len(coded))
		scr.Eng = r.eng
		scrambled = scr.Apply(append([]byte(nil), coded...))
	})

	// Modulation + OFDM (IFFT).
	bps := cfg.Mod.BitsPerSymbol()
	padBits := (-len(scrambled)%bps + bps) % bps
	scrambled = append(scrambled, make([]byte, padBits)...)
	var syms []phy.IQ
	r.section("mod", func() {
		out, err2 := phy.Modulate(scrambled, cfg.Mod)
		if err2 != nil {
			err = err2
			return
		}
		syms = out
		// Mapping cost: table lookup + store per symbol.
		for i := 0; i < len(out); i += 4 {
			r.eng.EmitScalarLoad("mov", int64(i%4096), 8)
			r.eng.EmitScalarStore("mov", int64(i%4096), 8)
		}
	})
	if err != nil {
		return nil, err
	}
	ofdm, err := phy.NewOFDM(512, 300, 36)
	if err != nil {
		return nil, err
	}
	txOFDM := *ofdm
	txOFDM.Eng = r.eng
	var txSamples [][]phy.IQ
	r.section("ofdm", func() {
		for off := 0; off < len(syms); off += ofdm.UsedCarriers {
			grid := make([]phy.IQ, ofdm.UsedCarriers)
			end := off + ofdm.UsedCarriers
			if end > len(syms) {
				copy(grid, syms[off:])
			} else {
				copy(grid, syms[off:end])
			}
			tx, err2 := txOFDM.Modulate(grid)
			if err2 != nil {
				err = err2
				return
			}
			txSamples = append(txSamples, tx)
		}
	})
	if err != nil {
		return nil, err
	}

	// ---- UE receive side (functional, untraced) ----
	ch := phy.NewAWGNChannel(cfg.SNRdB, cfg.Seed+23)
	var rxSyms []phy.IQ
	for _, s := range txSamples {
		out, err2 := ofdm.Demodulate(ch.Apply(s))
		if err2 != nil {
			return nil, err2
		}
		rxSyms = append(rxSyms, out...)
	}
	dem := phy.Demodulator{M: cfg.Mod, NoiseVar: ofdm.SubcarrierNoiseVar(ch.NoiseVar()), Scale: 8}
	llr := dem.Demodulate(rxSyms)[:len(coded)]
	scr := phy.NewScrambler(phy.ScrambleInit(0x4321, 0, 4, 9), len(llr))
	scr.ApplyLLR(llr)
	clampLLRs(llr, turbo.LLRLimit-1)

	decAll := make([][]byte, seg.C)
	sc := turbo.NewDecoder(code)
	sc.MaxIters = cfg.Iters + 2
	rmRx := phy.NewRateMatcher(d)
	for i := 0; i < seg.C; i++ {
		d0, d1, d2 := rmRx.Dematch(llr[i*ePerBlock:(i+1)*ePerBlock], 0)
		w := turbo.NewLLRWord(seg.K)
		copy(w.Sys, d0[:seg.K])
		copy(w.P1, d1[:seg.K])
		copy(w.P2, d2[:seg.K])
		for j := 0; j < 3; j++ {
			w.TailSys[j] = d0[seg.K+j]
			w.TailP1[j] = d1[seg.K+j]
		}
		bits, _, err2 := sc.Decode(w)
		if err2 != nil {
			return nil, err2
		}
		decAll[i] = bits
	}
	joined, blocksOK, err := seg.Join(decAll)
	if err != nil {
		return nil, err
	}
	res.CRCOK = blocksOK && phy.CheckCRC(joined, phy.CRC24APoly, 24)
	rxMAC := l2.NewMAC(tb.Bytes)
	pdus, err := rxMAC.ParseTB(l2.TransportBlock{Bits: joined[:len(joined)-24], Bytes: tb.Bytes})
	if err != nil {
		return nil, err
	}
	rxRLC := l2.NewRLC(9000)
	var sdu []byte
	for _, p := range pdus {
		segp, err2 := l2.UnmarshalRLC(p)
		if err2 != nil {
			return nil, err2
		}
		if out := rxRLC.Deliver(segp); out != nil {
			sdu = out
		}
	}
	rxPDCP := &l2.PDCP{}
	ip, _, err := rxPDCP.Decapsulate(sdu)
	if err != nil {
		return nil, err
	}
	res.PayloadOK = bytesEqual(ip, ipPacket)
	r.finish(res, epc.PathLatencyUs())
	return res, nil
}
