package pipeline

import (
	"testing"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/telemetry"
	"vransim/internal/transport"
)

func TestUplinkPacketSurvives(t *testing.T) {
	for _, proto := range []transport.Proto{transport.UDP, transport.TCP} {
		cfg := DefaultConfig(simd.W128, core.StrategyAPCM, proto, 128)
		res, err := RunUplink(cfg)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if !res.CRCOK {
			t.Errorf("%v: transport block CRC failed", proto)
		}
		if !res.PayloadOK {
			t.Errorf("%v: delivered payload differs from sent packet", proto)
		}
		if res.TotalUs <= 0 {
			t.Errorf("%v: nonpositive total time", proto)
		}
	}
}

func TestUplinkStagesPresent(t *testing.T) {
	cfg := DefaultConfig(simd.W128, core.StrategyExtract, transport.UDP, 128)
	res, err := RunUplink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ofdm", "demod", "descramble", "dci", "ratematch",
		"arrangement", "gamma", "alpha", "beta+ext", "ext", "interleave", "l2", "gtp",
		telemetry.StageDecode} {
		if _, ok := res.Stage(want); !ok {
			t.Errorf("missing stage %q", want)
		}
	}
	// The umbrella decode stage (shared vocabulary with the serving
	// tracer) must cover at least its largest sub-phase.
	dec, _ := res.Stage(telemetry.StageDecode)
	arrStage, _ := res.Stage("arrangement")
	if dec.Us < arrStage.Us {
		t.Errorf("decode stage %.2fµs smaller than arrangement %.2fµs", dec.Us, arrStage.Us)
	}
	// OFDM runs scalar code: its IPC must be high (the paper's "do
	// OFDM" observation); the extract arrangement must be store-bound
	// with low IPC.
	ofdm, _ := res.Stage("ofdm")
	if ofdm.IPC < 3.0 {
		t.Errorf("OFDM IPC = %.2f, want near 4 (scalar module)", ofdm.IPC)
	}
	arr, _ := res.Stage("arrangement")
	if arr.IPC > 2.0 {
		t.Errorf("extract arrangement IPC = %.2f, want < 2", arr.IPC)
	}
	if arr.TD.BackendBound < 0.3 {
		t.Errorf("extract arrangement backend bound = %.2f, want high", arr.TD.BackendBound)
	}
}

func TestUplinkAPCMFasterArrangement(t *testing.T) {
	orig, err := RunUplink(DefaultConfig(simd.W128, core.StrategyExtract, transport.UDP, 256))
	if err != nil {
		t.Fatal(err)
	}
	apcm, err := RunUplink(DefaultConfig(simd.W128, core.StrategyAPCM, transport.UDP, 256))
	if err != nil {
		t.Fatal(err)
	}
	ao := orig.StageUs("arrangement")
	aa := apcm.StageUs("arrangement")
	if aa >= ao {
		t.Errorf("APCM arrangement %.2fus not faster than original %.2fus", aa, ao)
	}
	reduction := 1 - aa/ao
	if reduction < 0.4 {
		t.Errorf("arrangement time reduction %.0f%%, want >= 40%%", reduction*100)
	}
	if apcm.Total.Cycles >= orig.Total.Cycles {
		t.Errorf("APCM total %d cycles not below original %d", apcm.Total.Cycles, orig.Total.Cycles)
	}
}

func TestDownlinkPacketSurvives(t *testing.T) {
	cfg := DefaultConfig(simd.W128, core.StrategyAPCM, transport.UDP, 128)
	res, err := RunDownlink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CRCOK || !res.PayloadOK {
		t.Errorf("downlink delivery failed (crc=%v payload=%v)", res.CRCOK, res.PayloadOK)
	}
	for _, want := range []string{"gtp", "l2", "dci", "turboenc", "ratematch", "scramble", "mod", "ofdm"} {
		if _, ok := res.Stage(want); !ok {
			t.Errorf("missing downlink stage %q", want)
		}
	}
}

func TestUplinkLargerPacketsCostMore(t *testing.T) {
	small, err := RunUplink(DefaultConfig(simd.W128, core.StrategyAPCM, transport.UDP, 64))
	if err != nil {
		t.Fatal(err)
	}
	large, err := RunUplink(DefaultConfig(simd.W128, core.StrategyAPCM, transport.UDP, 512))
	if err != nil {
		t.Fatal(err)
	}
	if large.Total.Cycles <= small.Total.Cycles {
		t.Errorf("512B packet (%d cycles) not costlier than 64B (%d cycles)",
			large.Total.Cycles, small.Total.Cycles)
	}
	if large.TBBytes <= small.TBBytes {
		t.Error("TB size did not grow with packet size")
	}
}

func TestUplinkWidths(t *testing.T) {
	for _, w := range simd.Widths {
		res, err := RunUplink(DefaultConfig(w, core.StrategyAPCM, transport.UDP, 128))
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if !res.PayloadOK {
			t.Errorf("%v: payload corrupted", w)
		}
	}
}
