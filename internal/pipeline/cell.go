package pipeline

import (
	"fmt"
	"math/rand"

	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/transport"
)

// CellConfig describes a small cell: several UEs generating uplink
// traffic, a round-robin scheduler granting one transport block per TTI,
// and the eNB processing budget derived from a calibrated pipeline run.
type CellConfig struct {
	// UEs is the number of attached users.
	UEs int
	// TTIs is the simulation horizon.
	TTIs int
	// TTIUs is the interval length (LTE: 1000 µs).
	TTIUs float64
	// PacketBytes and Proto describe each UE's traffic.
	PacketBytes int
	Proto       transport.Proto
	// ArrivalPerTTI is the probability a UE enqueues a packet each TTI.
	ArrivalPerTTI float64
	// W and Strategy configure the eNB software build whose per-packet
	// cost is calibrated once via RunUplink.
	W        simd.Width
	Strategy core.Strategy
	// Cores is the eNB worker-core pool.
	Cores int
	// Seed makes the run deterministic.
	Seed int64
	// Rng, when non-nil, supplies the arrival randomness explicitly so
	// concurrent runs are race-free and independently reproducible; when
	// nil a private source is seeded from Seed.
	Rng *rand.Rand
}

// CellResult aggregates the run.
type CellResult struct {
	// PerPacketUs is the calibrated eNB processing cost.
	PerPacketUs float64
	// Scheduled counts packets granted and processed; Dropped counts
	// deadline misses.
	Scheduled int
	Dropped   int
	// MeanLatencyUs and P99LatencyUs summarize queueing + processing
	// delay of delivered packets.
	MeanLatencyUs float64
	P99LatencyUs  float64
	// GoodputMbps is delivered payload over the horizon.
	GoodputMbps float64
	// PerUE counts delivered packets per user (fairness check).
	PerUE []int
}

// RunCell calibrates the per-packet cost with one full traced pipeline
// run, then plays the TTI-level queueing simulation: each TTI the
// round-robin scheduler grants one UE, whose head-of-line packet is
// handed to the earliest-free core; a packet missing the HARQ deadline
// (3 TTIs) is dropped.
func RunCell(cfg CellConfig) (*CellResult, error) {
	if cfg.UEs <= 0 || cfg.TTIs <= 0 || cfg.Cores <= 0 {
		return nil, fmt.Errorf("pipeline: cell needs UEs, TTIs and cores")
	}
	calib := DefaultConfig(cfg.W, cfg.Strategy, cfg.Proto, cfg.PacketBytes)
	calib.Seed = cfg.Seed
	ref, err := RunUplink(calib)
	if err != nil {
		return nil, err
	}
	if !ref.PayloadOK {
		return nil, fmt.Errorf("pipeline: calibration packet corrupted")
	}
	res := &CellResult{PerPacketUs: ref.TotalUs, PerUE: make([]int, cfg.UEs)}

	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	queues := make([]int, cfg.UEs) // backlog per UE (packet count)
	coreFree := make([]float64, cfg.Cores)
	deadline := 3 * cfg.TTIUs
	var latencies []float64
	next := 0 // round-robin pointer

	for tti := 0; tti < cfg.TTIs; tti++ {
		now := float64(tti) * cfg.TTIUs
		for u := range queues {
			if rng.Float64() < cfg.ArrivalPerTTI {
				queues[u]++
			}
		}
		// One grant per TTI: the next backlogged UE in RR order.
		granted := -1
		for i := 0; i < cfg.UEs; i++ {
			u := (next + i) % cfg.UEs
			if queues[u] > 0 {
				granted = u
				next = (u + 1) % cfg.UEs
				break
			}
		}
		if granted < 0 {
			continue
		}
		queues[granted]--
		res.Scheduled++
		best := 0
		for i := 1; i < cfg.Cores; i++ {
			if coreFree[i] < coreFree[best] {
				best = i
			}
		}
		start := now
		if coreFree[best] > start {
			start = coreFree[best]
		}
		finish := start + res.PerPacketUs
		coreFree[best] = finish
		if finish-now > deadline {
			res.Dropped++
			continue
		}
		res.PerUE[granted]++
		latencies = append(latencies, finish-now)
	}

	if len(latencies) > 0 {
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		res.MeanLatencyUs = sum / float64(len(latencies))
		// Nearly sorted already (queueing grows monotonically); a
		// simple insertion sort keeps this dependency-free.
		for i := 1; i < len(latencies); i++ {
			for j := i; j > 0 && latencies[j] < latencies[j-1]; j-- {
				latencies[j], latencies[j-1] = latencies[j-1], latencies[j]
			}
		}
		res.P99LatencyUs = latencies[len(latencies)*99/100]
	}
	horizon := float64(cfg.TTIs) * cfg.TTIUs
	res.GoodputMbps = float64(len(latencies)*cfg.PacketBytes*8) / horizon
	return res, nil
}
