package pipeline

import "math"

// TTIConfig describes the cell-level throughput question of Figure 16:
// transport blocks arrive every TTI and a pool of identical cores
// processes them; a block missing its HARQ deadline is lost.
type TTIConfig struct {
	// TTIUs is the transmission time interval (LTE: 1000 µs).
	TTIUs float64
	// ProcUs is the per-transport-block processing time on one core
	// (measured by RunUplink).
	ProcUs float64
	// TBBits is the information payload per transport block.
	TBBits int
	// DeadlineUs is the processing deadline (the HARQ round-trip
	// budget; LTE uplink leaves ~3 ms for eNB processing).
	DeadlineUs float64
	// Cores is the pool size.
	Cores int
}

// DefaultTTI returns LTE-shaped timing around a measured per-TB cost.
func DefaultTTI(procUs float64, tbBits, cores int) TTIConfig {
	return TTIConfig{TTIUs: 1000, ProcUs: procUs, TBBits: tbBits, DeadlineUs: 3000, Cores: cores}
}

// Simulate runs nTTIs intervals with `perTTI` transport blocks arriving
// each TTI, processed FIFO by the core pool, and returns the fraction of
// blocks that met the deadline and the achieved goodput in Mbps.
func (c TTIConfig) Simulate(perTTI, nTTIs int) (delivered float64, mbps float64) {
	if perTTI <= 0 || nTTIs <= 0 {
		return 0, 0
	}
	arrivals := make([]int, nTTIs)
	for i := range arrivals {
		arrivals[i] = perTTI
	}
	return c.SimulateArrivals(arrivals)
}

// SimulateArrivals generalizes Simulate to an arbitrary per-TTI arrival
// pattern (bursts, silences), which is what the serving runtime's
// synthetic traffic actually produces; arrivals[t] blocks arrive at the
// start of TTI t.
func (c TTIConfig) SimulateArrivals(arrivals []int) (delivered float64, mbps float64) {
	if len(arrivals) == 0 || c.Cores <= 0 {
		return 0, 0
	}
	// coreFree[i] is when core i next becomes idle (µs).
	coreFree := make([]float64, c.Cores)
	total := 0
	ok := 0
	for tti, n := range arrivals {
		arrive := float64(tti) * c.TTIUs
		for j := 0; j < n; j++ {
			total++
			// Earliest-free core.
			best := 0
			for i := 1; i < c.Cores; i++ {
				if coreFree[i] < coreFree[best] {
					best = i
				}
			}
			start := math.Max(arrive, coreFree[best])
			finish := start + c.ProcUs
			coreFree[best] = finish
			if c.DeadlineUs > 0 && finish-arrive <= c.DeadlineUs {
				ok++
			}
		}
	}
	if total == 0 {
		return 0, 0
	}
	delivered = float64(ok) / float64(total)
	horizon := float64(len(arrivals)) * c.TTIUs
	mbps = float64(ok) * float64(c.TBBits) / horizon // bits/µs = Mbps
	return delivered, mbps
}

// MaxStableLoad returns the largest per-TTI block count whose delivery
// ratio stays at or above the target (e.g. 0.99), and the corresponding
// goodput.
func (c TTIConfig) MaxStableLoad(target float64, nTTIs int) (perTTI int, mbps float64) {
	best, bestMbps := 0, 0.0
	for load := 1; load <= 4*c.Cores+8; load++ {
		d, m := c.Simulate(load, nTTIs)
		if d >= target {
			best, bestMbps = load, m
		} else if load > best+2 {
			break
		}
	}
	return best, bestMbps
}

// CoresForTarget returns the smallest pool able to sustain targetMbps
// with the given delivery ratio.
func CoresForTarget(targetMbps float64, procUs float64, tbBits int, delivery float64) int {
	for cores := 1; cores <= 256; cores++ {
		cfg := DefaultTTI(procUs, tbBits, cores)
		_, mbps := cfg.MaxStableLoad(delivery, 200)
		if mbps >= targetMbps {
			return cores
		}
	}
	return -1
}
