// Package pipeline wires the full vRAN software chain of the paper's
// Figure 1: a UE-side transmitter (traffic generator, PDCP/RLC/MAC,
// channel coding, OFDM), the eNB receive/transmit processing that the
// paper profiles (the traced part), and the EPC tunnel hops. One Run
// produces both a functional outcome (did the payload survive?) and a
// µop trace with per-module marks that the timing simulator turns into
// the per-module CPU times, IPCs and top-down breakdowns of Figures 3-6
// and the packet latencies of Figure 13.
package pipeline

import (
	"fmt"

	"vransim/internal/cache"
	"vransim/internal/core"
	"vransim/internal/l2"
	"vransim/internal/phy"
	"vransim/internal/simd"
	"vransim/internal/telemetry"
	"vransim/internal/trace"
	"vransim/internal/transport"
	"vransim/internal/turbo"
	"vransim/internal/uarch"
)

// Config parameterizes one pipeline run.
type Config struct {
	// W is the SIMD register width the eNB software is built for.
	W simd.Width
	// Strategy selects the data arrangement mechanism.
	Strategy core.Strategy
	// Platform is the CPU the eNB runs on.
	Platform uarch.Platform
	// Proto and PacketBytes describe the generated traffic.
	Proto       transport.Proto
	PacketBytes int
	// Mod is the constellation; Iters the turbo iteration budget.
	Mod   phy.Modulation
	Iters int
	// SNRdB is the radio channel quality.
	SNRdB float64
	// Seed makes the run deterministic.
	Seed int64
	// RearrangePerHalfIter mirrors the OAI decoder structure (default
	// true via DefaultConfig).
	RearrangePerHalfIter bool
}

// DefaultConfig returns a 5 MHz-class configuration for the given
// traffic.
func DefaultConfig(w simd.Width, s core.Strategy, proto transport.Proto, packetBytes int) Config {
	return Config{
		W: w, Strategy: s, Platform: uarch.WimpyPlatform(),
		Proto: proto, PacketBytes: packetBytes,
		// 6 dB keeps rate-1/3 QPSK comfortably decodable while leaving
		// the decoder genuinely iterating (2-4 of the allowed 4
		// iterations), as an operating base station would.
		Mod: phy.QPSK, Iters: 4, SNRdB: 6, Seed: 1,
		RearrangePerHalfIter: true,
	}
}

// StageTime is the attributed cost of one pipeline stage.
type StageTime struct {
	Name   string
	Insts  int
	Cycles int64
	Us     float64
	IPC    float64
	TD     uarch.TopDown
	// StoreBW is the register->L1 store bandwidth in bits/cycle.
	StoreBW float64
}

// Result is the outcome of one pipeline run.
type Result struct {
	// Stages aggregates the trace windows by stage name, in first-
	// appearance order.
	Stages []StageTime
	// Total is the simulation of the entire eNB trace (the authoritative
	// end-to-end processing cost; stage windows are attribution
	// estimates).
	Total uarch.Result
	// TotalUs is the eNB processing time plus the fixed EPC path delay.
	TotalUs float64
	// PayloadOK reports whether the transported packet survived
	// end-to-end; CRCOK whether the transport-block CRC held.
	PayloadOK bool
	CRCOK     bool
	// TBBytes is the transport-block size carrying the packet.
	TBBytes int
	// CodeBlocks is the number of turbo code blocks per TB.
	CodeBlocks int
	// InfoBits is the total information bits decoded.
	InfoBits int
}

// StageUs returns the attributed time of the named stage (0 if absent).
func (r *Result) StageUs(name string) float64 {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Us
		}
	}
	return 0
}

// Stage returns the named stage record.
func (r *Result) Stage(name string) (StageTime, bool) {
	for _, s := range r.Stages {
		if s.Name == name {
			return s, true
		}
	}
	return StageTime{}, false
}

// mark is a named trace window.
type mark struct {
	name   string
	lo, hi int
}

// runner carries the per-run state.
type runner struct {
	cfg   Config
	eng   *simd.Engine
	marks []mark
}

func (r *runner) section(name string, f func()) {
	lo := r.eng.TraceLen()
	f()
	r.marks = append(r.marks, mark{name: name, lo: lo, hi: r.eng.TraceLen()})
}

// RunUplink executes one uplink packet: UE builds and transmits it, the
// eNB (traced) receives, decodes and forwards it through the EPC.
func RunUplink(cfg Config) (*Result, error) {
	r := &runner{cfg: cfg}
	mem := simd.NewMemory(64 << 20)
	r.eng = simd.NewEngine(cfg.W, mem, trace.NewRecorder(1<<20))

	// ---- UE side (functional, untraced) ----
	gen := transport.NewGenerator(cfg.Proto, cfg.Seed)
	ipPacket, err := gen.Next(cfg.PacketBytes)
	if err != nil {
		return nil, err
	}
	pdcp := &l2.PDCP{}
	rlc := l2.NewRLC(9000)
	pdu := pdcp.Encapsulate(ipPacket)
	segs := rlc.Segment(pdu)
	var rlcPDUs [][]byte
	for _, s := range segs {
		rlcPDUs = append(rlcPDUs, s.Marshal())
	}
	tbsBytes := 0
	for _, p := range rlcPDUs {
		tbsBytes += l2.MACHeaderLen + len(p)
	}
	mac := l2.NewMAC(tbsBytes)
	tb, used := mac.BuildTB(rlcPDUs)
	if used != len(rlcPDUs) {
		return nil, fmt.Errorf("pipeline: MAC packed %d/%d PDUs", used, len(rlcPDUs))
	}

	// Channel coding: CRC24A, segmentation, per-block turbo + rate
	// matching at rate ~1/3.
	tbBits := append([]byte(nil), tb.Bits...)
	withCRC := phy.AppendCRC(tbBits, phy.CRC24APoly, 24)
	// Lane-filling segmentation: split the TB so the lane-parallel
	// decoder fills every register lane group of the configured width.
	seg, err := phy.SegmentLaneFill(len(withCRC), turbo.BlocksPerRegister(cfg.W))
	if err != nil {
		return nil, err
	}
	blocks, err := seg.Split(withCRC)
	if err != nil {
		return nil, err
	}
	code, err := turbo.NewCode(seg.K)
	if err != nil {
		return nil, err
	}
	ePerBlock := 3 * seg.K // transmitted bits per block (~rate 1/3)
	d := seg.K + 4         // rate-matcher stream length (K + tail share)
	rm := phy.NewRateMatcher(d)
	var coded []byte
	codewords := make([]*turbo.Codeword, len(blocks))
	for i, blk := range blocks {
		cw, err := code.Encode(blk)
		if err != nil {
			return nil, err
		}
		codewords[i] = cw
		s0, s1, s2 := padStreams(cw, d)
		sel, err := rm.Match(s0, s1, s2, ePerBlock, 0)
		if err != nil {
			return nil, err
		}
		coded = append(coded, sel...)
	}

	// Scramble, modulate, OFDM, channel.
	scr := phy.NewScrambler(phy.ScrambleInit(0x1234, 0, 2, 7), len(coded))
	scrambled := scr.Apply(append([]byte(nil), coded...))
	bps := cfg.Mod.BitsPerSymbol()
	padBits := (-len(scrambled)%bps + bps) % bps
	scrambled = append(scrambled, make([]byte, padBits)...)
	syms, err := phy.Modulate(scrambled, cfg.Mod)
	if err != nil {
		return nil, err
	}
	ofdm, err := phy.NewOFDM(512, 300, 36)
	if err != nil {
		return nil, err
	}
	ch := phy.NewAWGNChannel(cfg.SNRdB, cfg.Seed+17)
	var rxSamples [][]phy.IQ
	for off := 0; off < len(syms); off += ofdm.UsedCarriers {
		end := off + ofdm.UsedCarriers
		grid := make([]phy.IQ, ofdm.UsedCarriers)
		if end > len(syms) {
			copy(grid, syms[off:])
		} else {
			copy(grid, syms[off:end])
		}
		tx, err := ofdm.Modulate(grid)
		if err != nil {
			return nil, err
		}
		rxSamples = append(rxSamples, ch.Apply(tx))
	}

	// ---- eNB side (traced) ----
	res := &Result{TBBytes: tb.Bytes, CodeBlocks: seg.C, InfoBits: seg.C * seg.K}

	// OFDM demodulation (scalar FFT: the "do OFDM" module).
	rxOFDM := *ofdm
	rxOFDM.Eng = r.eng
	var rxSyms []phy.IQ
	r.section("ofdm", func() {
		for _, s := range rxSamples {
			out, err2 := rxOFDM.Demodulate(s)
			if err2 != nil {
				err = err2
				return
			}
			rxSyms = append(rxSyms, out...)
		}
	})
	if err != nil {
		return nil, err
	}

	// QAM soft demodulation.
	var llr []int16
	r.section("demod", func() {
		dem := phy.Demodulator{M: cfg.Mod, NoiseVar: ofdm.SubcarrierNoiseVar(ch.NoiseVar()), Scale: 8, Eng: r.eng}
		llr = dem.Demodulate(rxSyms)
	})
	llr = llr[:len(coded)]
	clampLLRs(llr, turbo.LLRLimit-1)

	// Descrambling.
	r.section("descramble", func() {
		scr2 := phy.NewScrambler(phy.ScrambleInit(0x1234, 0, 2, 7), len(llr))
		scr2.Eng = r.eng
		scr2.ApplyLLR(llr)
	})

	// DCI decode for the uplink grant (one control message per TTI).
	r.section("dci", func() {
		dci := phy.DCI{Payload: make([]byte, 27)}
		codedDCI := phy.EncodeDCI(dci)
		dciLLR := make([]int16, len(codedDCI))
		for i, b := range codedDCI {
			if b == 0 {
				dciLLR[i] = 16
			} else {
				dciLLR[i] = -16
			}
		}
		dec := &phy.TBCCDecoder{Eng: r.eng}
		if _, ok, err2 := phy.DecodeDCI(dciLLR, 27, dec); err2 != nil || !ok {
			err = fmt.Errorf("pipeline: DCI decode failed: %v", err2)
		}
	})
	if err != nil {
		return nil, err
	}

	// Rate de-matching, per block.
	rmRx := phy.NewRateMatcher(d)
	rmRx.Eng = r.eng
	type blockLLR struct{ w *turbo.LLRWord }
	blockWords := make([]blockLLR, seg.C)
	r.section("ratematch", func() {
		for i := 0; i < seg.C; i++ {
			part := llr[i*ePerBlock : (i+1)*ePerBlock]
			d0, d1, d2 := rmRx.Dematch(part, 0)
			w := turbo.NewLLRWord(seg.K)
			copy(w.Sys, d0[:seg.K])
			copy(w.P1, d1[:seg.K])
			copy(w.P2, d2[:seg.K])
			// Tail positions ride at the end of streams 0/1.
			for j := 0; j < 3; j++ {
				w.TailSys[j] = d0[seg.K+j]
				w.TailP1[j] = d1[seg.K+j]
			}
			clampWordLLRs(w, turbo.LLRLimit-1)
			blockWords[i] = blockLLR{w: w}
		}
	})

	// Turbo decoding with the configured arrangement mechanism. Blocks
	// are decoded in lane-parallel batches: an AVX256 build carries two
	// code blocks per register, AVX512 four — the way wider SIMD
	// actually accelerates the recursion-heavy calculation (DESIGN.md).
	// The decoder emits its own arrangement/gamma/alpha/beta/ext marks.
	// The whole decode is additionally wrapped in one umbrella section
	// named with the serving runtime's shared stage vocabulary
	// (telemetry.StageDecode), so an offline vranpipe per-stage report
	// and a live vranserve /metrics scrape can be diffed stage-by-stage;
	// the decoder's own sub-phase marks keep their finer attribution.
	decoded := make([][]byte, 0, seg.C)
	crcAll := true
	batch := turbo.BlocksPerRegister(cfg.W)
	r.section(telemetry.StageDecode, func() {
		for i := 0; i < seg.C; i += batch {
			end := i + batch
			if end > seg.C {
				end = seg.C
			}
			words := make([]*turbo.LLRWord, 0, end-i)
			for j := i; j < end; j++ {
				words = append(words, blockWords[j].w)
			}
			dec := turbo.NewMultiSIMDDecoder(code)
			dec.MaxIters = cfg.Iters
			dec.RearrangePerHalfIter = cfg.RearrangePerHalfIter
			bits, _, err2 := dec.Decode(r.eng, core.ByStrategy(cfg.Strategy), words)
			if err2 != nil {
				err = err2
				return
			}
			decoded = append(decoded, bits...)
			for _, m := range dec.Marks {
				r.marks = append(r.marks, mark{name: m.Name, lo: m.Lo, hi: m.Hi})
			}
		}
	})
	if err != nil {
		return nil, err
	}

	// Reassemble the transport block, verify CRC24A, walk up the stack.
	var rxIP []byte
	r.section("l2", func() {
		joined, blocksOK, err2 := seg.Join(decoded)
		if err2 != nil {
			err = err2
			return
		}
		crcAll = blocksOK && phy.CheckCRC(joined, phy.CRC24APoly, 24)
		rxTB := l2.TransportBlock{Bits: joined[:len(joined)-24], Bytes: tb.Bytes}
		rxMAC := l2.NewMAC(tb.Bytes)
		pdus, err2 := rxMAC.ParseTB(rxTB)
		if err2 != nil {
			err = err2
			return
		}
		rxRLC := l2.NewRLC(9000)
		var sdu []byte
		for _, p := range pdus {
			segp, err3 := l2.UnmarshalRLC(p)
			if err3 != nil {
				err = err3
				return
			}
			if out := rxRLC.Deliver(segp); out != nil {
				sdu = out
			}
		}
		rxPDCP := &l2.PDCP{Eng: r.eng}
		ip, _, err2 := rxPDCP.Decapsulate(sdu)
		if err2 != nil {
			err = err2
			return
		}
		rxIP = ip
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: L2 receive failed (CRC ok=%v): %w", crcAll, err)
	}

	// EPC tunnel hops (functional; fixed latency added below).
	epc := &transport.EPCPath{SGWTEID: 0x10, PGWTEID: 0x20, HopDelayUs: 30}
	var delivered []byte
	r.section("gtp", func() {
		out, err2 := epc.Traverse(rxIP)
		if err2 != nil {
			err = err2
			return
		}
		delivered = out
		// Tunnel encap/decap cost: header writes per hop.
		for h := 0; h < 2; h++ {
			r.eng.EmitScalarStore("mov", int64(h*64), 8)
			r.eng.EmitScalarLoad("mov", int64(h*64), 8)
			r.eng.EmitScalar("add", 4)
		}
	})
	if err != nil {
		return nil, err
	}

	res.CRCOK = crcAll
	res.PayloadOK = bytesEqual(delivered, ipPacket)
	r.finish(res, epc.PathLatencyUs())
	return res, nil
}

// padStreams extends the three codeword streams (with tail bits folded
// into streams 0/1) to the rate-matcher length d.
func padStreams(cw *turbo.Codeword, d int) (s0, s1, s2 []byte) {
	s0 = make([]byte, d)
	s1 = make([]byte, d)
	s2 = make([]byte, d)
	copy(s0, cw.Sys)
	copy(s1, cw.P1)
	copy(s2, cw.P2)
	for j := 0; j < 3; j++ {
		s0[len(cw.Sys)+j] = cw.TailSys[j]
		s1[len(cw.P1)+j] = cw.TailP1[j]
	}
	return
}

func clampLLRs(llr []int16, lim int16) {
	for i := range llr {
		if llr[i] > lim {
			llr[i] = lim
		}
		if llr[i] < -lim {
			llr[i] = -lim
		}
	}
}

func clampWordLLRs(w *turbo.LLRWord, lim int16) {
	clampLLRs(w.Sys, lim)
	clampLLRs(w.P1, lim)
	clampLLRs(w.P2, lim)
	clampLLRs(w.TailSys[:], lim)
	clampLLRs(w.TailP1[:], lim)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// finish runs the timing simulations: the full trace for the total, and
// one rebased window per stage name for attribution.
func (r *runner) finish(res *Result, extraUs float64) {
	insts := r.eng.Recorder().Insts()
	hier := cache.NewHierarchy(r.cfg.Platform.Caches)
	res.Total = uarch.NewSimulator(r.cfg.Platform.Core, hier).Run(insts)
	res.TotalUs = res.Total.Microseconds() + extraUs

	// Simulate each window in isolation and aggregate by stage name,
	// preserving first-appearance order. Each window gets a fresh cache
	// (cold-start effects are shared by all stages and small relative
	// to window sizes).
	order := []string{}
	agg := map[string]*StageTime{}
	for _, m := range r.marks {
		if m.hi <= m.lo {
			continue
		}
		w := trace.Window(insts, m.lo, m.hi)
		sim := uarch.Simulate(w, r.cfg.Platform.Core, &r.cfg.Platform.Caches)
		st, ok := agg[m.name]
		if !ok {
			st = &StageTime{Name: m.name}
			agg[m.name] = st
			order = append(order, m.name)
		}
		weight := float64(sim.Cycles)
		total := float64(st.Cycles) + weight
		if total > 0 {
			blend := func(old, add float64) float64 {
				return (old*float64(st.Cycles) + add*weight) / total
			}
			st.TD = uarch.TopDown{
				Retiring:      blend(st.TD.Retiring, sim.TopDown.Retiring),
				FrontendBound: blend(st.TD.FrontendBound, sim.TopDown.FrontendBound),
				BadSpec:       blend(st.TD.BadSpec, sim.TopDown.BadSpec),
				BackendBound:  blend(st.TD.BackendBound, sim.TopDown.BackendBound),
				CoreBound:     blend(st.TD.CoreBound, sim.TopDown.CoreBound),
				MemoryBound:   blend(st.TD.MemoryBound, sim.TopDown.MemoryBound),
			}
			st.StoreBW = blend(st.StoreBW, sim.StoreBitsPerCycle())
		}
		st.Insts += len(w)
		st.Cycles += sim.Cycles
		st.Us += sim.Microseconds()
	}
	for _, name := range order {
		st := agg[name]
		if st.Cycles > 0 {
			st.IPC = float64(st.Insts) / float64(st.Cycles)
		}
		res.Stages = append(res.Stages, *st)
	}
}
