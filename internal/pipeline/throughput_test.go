package pipeline

import (
	"testing"
	"testing/quick"
)

func TestTTISimulateUnderload(t *testing.T) {
	// One 500µs block per 1000µs TTI on one core: everything delivered.
	cfg := DefaultTTI(500, 12000, 1)
	d, mbps := cfg.Simulate(1, 100)
	if d != 1 {
		t.Errorf("delivery %f, want 1 under light load", d)
	}
	if mbps < 11.9 || mbps > 12.1 {
		t.Errorf("goodput %f Mbps, want ~12", mbps)
	}
}

func TestTTISimulateOverload(t *testing.T) {
	// Four 800µs blocks per TTI on one core: the queue grows without
	// bound and deadlines start failing.
	cfg := DefaultTTI(800, 12000, 1)
	d, _ := cfg.Simulate(4, 200)
	if d > 0.5 {
		t.Errorf("delivery %f under 3.2x overload, want low", d)
	}
}

func TestTTIMoreCoresMoreGoodput(t *testing.T) {
	one := DefaultTTI(700, 12000, 1)
	four := DefaultTTI(700, 12000, 4)
	_, m1 := one.MaxStableLoad(0.99, 200)
	_, m4 := four.MaxStableLoad(0.99, 200)
	if m4 < 3*m1 {
		t.Errorf("4 cores sustain %f Mbps vs 1 core %f; want ~4x", m4, m1)
	}
}

func TestCoresForTarget(t *testing.T) {
	// 12 kb per TB at 600 µs/TB ⇒ one core sustains ~20 Mbps; 300 Mbps
	// needs ~15-16 cores.
	cores := CoresForTarget(300, 600, 12000, 0.99)
	if cores < 14 || cores > 18 {
		t.Errorf("cores for 300 Mbps = %d, want ~15-16", cores)
	}
	// A faster per-TB time must not need more cores.
	faster := CoresForTarget(300, 450, 12000, 0.99)
	if faster > cores {
		t.Errorf("faster processing needs %d cores > %d", faster, cores)
	}
}

// Property: delivery ratio never increases when load increases.
func TestTTIDeliveryMonotone(t *testing.T) {
	f := func(procRaw uint8, coresRaw uint8) bool {
		cfg := DefaultTTI(float64(procRaw%200)*10+100, 10000, int(coresRaw%4)+1)
		prev := 1.0
		for load := 1; load <= 6; load++ {
			d, _ := cfg.Simulate(load, 50)
			if d > prev+1e-9 {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTTIEdgeCases(t *testing.T) {
	cfg := DefaultTTI(100, 1000, 0)
	if d, m := cfg.Simulate(1, 10); d != 0 || m != 0 {
		t.Error("zero cores should deliver nothing")
	}
	cfg = DefaultTTI(100, 1000, 1)
	if d, m := cfg.Simulate(0, 10); d != 0 || m != 0 {
		t.Error("zero load should report zeros")
	}
}

func TestTTIZeroDeadline(t *testing.T) {
	// A zero deadline budget means nothing is deliverable, even with
	// instant processing: the serving layer treats it as "shed all".
	cfg := TTIConfig{TTIUs: 1000, ProcUs: 0, TBBits: 1000, DeadlineUs: 0, Cores: 4}
	if d, m := cfg.Simulate(2, 50); d != 0 || m != 0 {
		t.Errorf("zero deadline delivered %.2f (%.2f Mbps), want nothing", d, m)
	}
}

func TestTTIBurstArrival(t *testing.T) {
	// One giant burst followed by silence: the pool drains the backlog,
	// and only the blocks within the deadline horizon survive. Capacity
	// within the 3000µs deadline: first block starts at 0, each core
	// finishes floor(3000/500)=6 blocks in budget -> 12 of 20 delivered.
	cfg := TTIConfig{TTIUs: 1000, ProcUs: 500, TBBits: 12000, DeadlineUs: 3000, Cores: 2}
	arrivals := make([]int, 20)
	arrivals[0] = 20
	d, mbps := cfg.SimulateArrivals(arrivals)
	want := 12.0 / 20.0
	if d < want-1e-9 || d > want+1e-9 {
		t.Errorf("burst delivery %.3f, want %.3f", d, want)
	}
	if mbps <= 0 {
		t.Error("burst goodput should be positive")
	}

	// The same blocks spread evenly are all deliverable.
	even := make([]int, 20)
	for i := range even {
		even[i] = 1
	}
	dEven, _ := cfg.SimulateArrivals(even)
	if dEven != 1 {
		t.Errorf("even delivery %.3f, want 1", dEven)
	}
	if dEven <= d {
		t.Error("bursts must hurt delivery relative to even arrivals")
	}
}

func TestTTISimulateMatchesArrivals(t *testing.T) {
	// Simulate(perTTI, n) must be exactly SimulateArrivals(flat pattern).
	cfg := DefaultTTI(700, 8000, 2)
	arr := make([]int, 40)
	for i := range arr {
		arr[i] = 3
	}
	d1, m1 := cfg.Simulate(3, 40)
	d2, m2 := cfg.SimulateArrivals(arr)
	if d1 != d2 || m1 != m2 {
		t.Errorf("Simulate (%.3f, %.3f) != SimulateArrivals (%.3f, %.3f)", d1, m1, d2, m2)
	}
}
