package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// HealthStatus is the /healthz verdict.
type HealthStatus struct {
	Healthy bool    `json:"healthy"`
	Reason  string  `json:"reason,omitempty"`
	// DropRate is the observed drop fraction the verdict was keyed on;
	// QueueFrac the worst per-cell queue fill fraction.
	DropRate  float64 `json:"drop_rate"`
	QueueFrac float64 `json:"queue_frac"`
}

// AdminConfig wires the admin server to its data sources. Every hook is
// a closure so the server stays generic: it has no idea what a serving
// runtime is, only how to render what it is handed.
type AdminConfig struct {
	// Addr is the listen address (e.g. ":9090" or "127.0.0.1:0").
	Addr string
	// Metrics supplies the exposition families for /metrics (Prometheus
	// text) and /metrics?format=json.
	Metrics func() []Family
	// Snapshot supplies the /snapshot JSON body.
	Snapshot func() any
	// Spans supplies the /spans JSON body (recent and slowest spans).
	Spans func() any
	// Health supplies the /healthz verdict (nil → always healthy).
	Health func() HealthStatus
}

// AdminServer is the live observability endpoint of a serving process:
// /metrics, /snapshot, /spans, /healthz and /debug/pprof/* on one
// mux, started with Start and stopped gracefully with Shutdown.
type AdminServer struct {
	cfg  AdminConfig
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// NewAdmin builds the server (not yet listening).
func NewAdmin(cfg AdminConfig) *AdminServer {
	a := &AdminServer{cfg: cfg, done: make(chan struct{})}
	a.srv = &http.Server{
		Handler:           a.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return a
}

// Handler returns the admin mux (exported so tests and embedders can
// mount it without a listener).
func (a *AdminServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/snapshot", a.handleJSON(func() any {
		if a.cfg.Snapshot == nil {
			return nil
		}
		return a.cfg.Snapshot()
	}))
	mux.HandleFunc("/spans", a.handleJSON(func() any {
		if a.cfg.Spans == nil {
			return nil
		}
		return a.cfg.Spans()
	}))
	mux.HandleFunc("/healthz", a.handleHealth)
	// Explicit pprof routes: the runtime's own mux, not DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (a *AdminServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var fams []Family
	if a.cfg.Metrics != nil {
		fams = a.cfg.Metrics()
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, fams)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteProm(w, fams)
}

func (a *AdminServer) handleJSON(body func() any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(body()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}

func (a *AdminServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := HealthStatus{Healthy: true}
	if a.cfg.Health != nil {
		st = a.cfg.Health()
	}
	w.Header().Set("Content-Type", "application/json")
	if !st.Healthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	_ = enc.Encode(st)
}

// Start binds the listener and serves in a background goroutine. With a
// ":0" port the bound address is available from Addr afterwards.
func (a *AdminServer) Start() error {
	ln, err := net.Listen("tcp", a.cfg.Addr)
	if err != nil {
		return fmt.Errorf("telemetry: admin listen %s: %w", a.cfg.Addr, err)
	}
	a.ln = ln
	go func() {
		defer close(a.done)
		_ = a.srv.Serve(ln)
	}()
	return nil
}

// Addr reports the bound listen address ("" before Start).
func (a *AdminServer) Addr() string {
	if a.ln == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// URL reports the http base URL of the bound listener.
func (a *AdminServer) URL() string {
	if a.ln == nil {
		return ""
	}
	return "http://" + a.ln.Addr().String()
}

// Shutdown stops accepting connections and waits (bounded by ctx) for
// in-flight requests, then for the serve goroutine to exit.
func (a *AdminServer) Shutdown(ctx context.Context) error {
	if a.ln == nil {
		return nil
	}
	err := a.srv.Shutdown(ctx)
	select {
	case <-a.done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	return err
}
