package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"vransim/internal/uarch"
)

// MetricType distinguishes Prometheus metric kinds.
type MetricType int

// Supported kinds (summaries are rendered as gauges with a "quantile"
// label, the conventional client-side encoding).
const (
	Counter MetricType = iota
	Gauge
)

func (t MetricType) String() string {
	if t == Counter {
		return "counter"
	}
	return "gauge"
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Sample is one time-series point of a family.
type Sample struct {
	Labels []Label
	Value  float64
}

// Family is one named metric with help text and samples. The exposition
// model is deliberately tiny — enough to render valid Prometheus text
// format and a JSON mirror without a third-party client library.
type Family struct {
	Name string
	Help string
	Type MetricType
	Samples []Sample
}

// L is shorthand for building a label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// F is shorthand for building a single-sample family.
func F(name, help string, t MetricType, v float64, labels ...Label) Family {
	return Family{Name: name, Help: help, Type: t,
		Samples: []Sample{{Labels: labels, Value: v}}}
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WriteProm renders the families in Prometheus text exposition format
// (version 0.0.4): # HELP / # TYPE headers followed by one line per
// sample. Families are rendered in the order given; samples likewise.
func WriteProm(w io.Writer, fams []Family) error {
	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		for _, s := range f.Samples {
			v := s.Value
			if math.IsNaN(v) {
				v = 0
			}
			if len(s.Labels) == 0 {
				if _, err := fmt.Fprintf(w, "%s %s\n", f.Name, formatValue(v)); err != nil {
					return err
				}
				continue
			}
			parts := make([]string, len(s.Labels))
			for i, l := range s.Labels {
				parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
			}
			if _, err := fmt.Fprintf(w, "%s{%s} %s\n", f.Name, strings.Join(parts, ","), formatValue(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue renders a float the way Prometheus clients do: integers
// without a decimal point, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// jsonSample mirrors Sample with map labels for readable JSON.
type jsonSample struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// jsonFamily mirrors Family for the JSON exposition.
type jsonFamily struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Type    string       `json:"type"`
	Samples []jsonSample `json:"samples"`
}

// WriteJSON renders the same families as a JSON array, for consumers
// that prefer structure over scrape format.
func WriteJSON(w io.Writer, fams []Family) error {
	out := make([]jsonFamily, 0, len(fams))
	for _, f := range fams {
		jf := jsonFamily{Name: f.Name, Help: f.Help, Type: f.Type.String()}
		for _, s := range f.Samples {
			js := jsonSample{Value: s.Value}
			if len(s.Labels) > 0 {
				js.Labels = make(map[string]string, len(s.Labels))
				for _, l := range s.Labels {
					js.Labels[l.Name] = l.Value
				}
			}
			jf.Samples = append(jf.Samples, js)
		}
		out = append(out, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Families renders the tracer's per-stage aggregates as exposition
// families: a span counter per stage and latency quantile gauges in
// seconds (Prometheus base unit).
func (t *Tracer) Families() []Family {
	if t == nil {
		return nil
	}
	spans := Family{Name: "vran_stage_spans_total", Help: "Spans recorded per serving stage.", Type: Counter}
	lat := Family{Name: "vran_stage_latency_seconds", Help: "Per-stage dwell time quantiles (queue wait, batch wait, decode).", Type: Gauge}
	for st := Stage(0); st < NumStages; st++ {
		h := &t.hists[st]
		name := st.Name()
		spans.Samples = append(spans.Samples, Sample{
			Labels: []Label{L("stage", name)}, Value: float64(h.Count())})
		for _, q := range []struct {
			q float64
			s string
		}{{0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}} {
			lat.Samples = append(lat.Samples, Sample{
				Labels: []Label{L("stage", name), L("quantile", q.s)},
				Value:  h.Percentile(q.q).Seconds(),
			})
		}
	}
	return []Family{spans, lat}
}

// UarchFamilies renders a simulator result as gauges: the counters the
// paper's attribution methodology is built on (IPC, top-down split,
// port utilization, store bandwidth), labelled with where the result
// came from (e.g. source="calibration").
func UarchFamilies(r uarch.Result, source string) []Family {
	src := L("source", source)
	td := Family{Name: "vran_uarch_topdown_fraction",
		Help: "Top-down pipeline-slot fractions of the calibration decode.", Type: Gauge}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"retiring", r.TopDown.Retiring},
		{"frontend_bound", r.TopDown.FrontendBound},
		{"bad_speculation", r.TopDown.BadSpec},
		{"backend_bound", r.TopDown.BackendBound},
		{"core_bound", r.TopDown.CoreBound},
		{"memory_bound", r.TopDown.MemoryBound},
	} {
		td.Samples = append(td.Samples, Sample{Labels: []Label{src, L("category", c.name)}, Value: c.v})
	}
	ports := Family{Name: "vran_uarch_port_utilization",
		Help: "Busy fraction per execution port of the calibration decode.", Type: Gauge}
	for p := 0; p < uarch.NumPorts; p++ {
		ports.Samples = append(ports.Samples, Sample{
			Labels: []Label{src, L("port", fmt.Sprintf("%d", p))},
			Value:  r.PortUtilization(p),
		})
	}
	return []Family{
		F("vran_uarch_ipc", "Retired µops per cycle of the calibration decode.", Gauge, r.IPC(), src),
		td,
		ports,
		F("vran_uarch_store_bits_per_cycle", "Register→L1 store bandwidth of the calibration decode.", Gauge, r.StoreBitsPerCycle(), src),
		F("vran_uarch_cycles", "Simulated cycles of the calibration decode.", Gauge, float64(r.Cycles), src),
	}
}

// SortSamples orders a family's samples lexically by labels — useful
// for deterministic test output, not required by the format.
func SortSamples(f *Family) {
	sort.Slice(f.Samples, func(i, j int) bool {
		a, b := f.Samples[i].Labels, f.Samples[j].Labels
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k].Value != b[k].Value {
				return a[k].Value < b[k].Value
			}
		}
		return len(a) < len(b)
	})
}
