package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistPercentiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	check := func(q float64, want time.Duration) {
		t.Helper()
		got := h.Percentile(q)
		if rel := math.Abs(float64(got-want)) / float64(want); rel > 0.125 {
			t.Errorf("p%.0f = %v, want %v within 12.5%%", q*100, got, want)
		}
	}
	check(0.50, 50*time.Millisecond)
	check(0.90, 90*time.Millisecond)
	check(0.99, 99*time.Millisecond)
	if h.Count() != 100 {
		t.Errorf("count %d, want 100", h.Count())
	}
	wantMean := 50500 * time.Microsecond
	if h.Mean() != wantMean {
		t.Errorf("mean %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Percentile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

// TestHistIndexValueRoundTrip: every reachable bucket's representative
// value must index back into the same bucket, indexing is monotone, and
// the unreachable top octaves saturate cleanly.
func TestHistIndexValueRoundTrip(t *testing.T) {
	top := HistIndex(math.MaxInt64) // highest bucket any int64 ns reaches
	last := -1
	for idx := 0; idx <= top; idx++ {
		v := HistValue(idx)
		if v <= 0 {
			t.Fatalf("bucket %d has non-positive representative %d", idx, v)
		}
		back := HistIndex(v)
		if back != idx {
			t.Errorf("HistIndex(HistValue(%d)) = %d", idx, back)
		}
		if back < last {
			t.Errorf("index not monotone at bucket %d", idx)
		}
		last = back
	}
	for idx := top + 1; idx < HistBuckets; idx++ {
		if HistValue(idx) != math.MaxInt64 {
			t.Errorf("unreachable bucket %d should saturate, got %d", idx, HistValue(idx))
		}
	}
}

// TestHistOverflow: the largest representable duration must land in a
// valid bucket and dominate percentiles.
func TestHistOverflow(t *testing.T) {
	idx := HistIndex(math.MaxInt64)
	if idx < 0 || idx >= HistBuckets {
		t.Fatalf("overflow index %d out of range", idx)
	}
	var h Hist
	h.Observe(time.Duration(math.MaxInt64))
	h.Observe(time.Nanosecond)
	if got := h.Percentile(0.99); got != time.Duration(HistValue(idx)) {
		t.Errorf("overflow p99 = %v, want %v", got, time.Duration(HistValue(idx)))
	}
	if got := h.Percentile(0.0); got != time.Duration(HistValue(0)) {
		t.Errorf("p0 = %v, want bottom bucket %v", got, time.Duration(HistValue(0)))
	}
}

// TestHistBucketsRoundTrip: the exported bucket snapshot must
// reproduce the histogram's own percentiles exactly — it is the same
// data, just portable.
func TestHistBucketsRoundTrip(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	b := h.Buckets()
	if len(b) == 0 || b[len(b)-1] == 0 {
		t.Fatalf("buckets not trimmed: len %d", len(b))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, want := PercentileFromBuckets(b, q), h.Percentile(q); got != want {
			t.Errorf("p%.0f from buckets = %v, want %v", q*100, got, want)
		}
	}
	if h.Count() == 0 || h.Buckets() == nil {
		t.Error("populated histogram must export buckets")
	}
	var empty Hist
	if empty.Buckets() != nil {
		t.Error("empty histogram should export nil buckets")
	}
	if PercentileFromBuckets(nil, 0.99) != 0 {
		t.Error("nil buckets should report zero percentiles")
	}
}

// TestMergeBuckets: merging two shards' buckets must yield the
// percentiles of the pooled population — the property the fleet
// aggregate relies on (max-folding per-shard percentiles does not have
// it).
func TestMergeBuckets(t *testing.T) {
	var fast, slow Hist
	for i := 0; i < 900; i++ {
		fast.Observe(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		slow.Observe(100 * time.Millisecond)
	}
	merged := MergeBuckets(nil, fast.Buckets())
	merged = MergeBuckets(merged, slow.Buckets())

	var pooled Hist
	for i := 0; i < 900; i++ {
		pooled.Observe(time.Millisecond)
	}
	for i := 0; i < 100; i++ {
		pooled.Observe(100 * time.Millisecond)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got, want := PercentileFromBuckets(merged, q), pooled.Percentile(q); got != want {
			t.Errorf("merged p%.0f = %v, want pooled %v", q*100, got, want)
		}
	}
	// The pooled p50 is the fast mode — NOT the max of the per-shard
	// p50s, which the old max-fold would have reported.
	if p50 := PercentileFromBuckets(merged, 0.5); p50 > 10*time.Millisecond {
		t.Errorf("merged p50 = %v, expected the fast mode (~1ms)", p50)
	}
	// Merging into a shorter dst grows it.
	short := MergeBuckets([]uint64{1}, slow.Buckets())
	if len(short) < len(slow.Buckets()) {
		t.Errorf("dst did not grow: %d < %d", len(short), len(slow.Buckets()))
	}
}

// TestHistConcurrent exercises the lock-free counters under the race
// detector.
func TestHistConcurrent(t *testing.T) {
	var h Hist
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*1000+i) * time.Microsecond)
				if i%100 == 0 {
					h.Percentile(0.9)
				}
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("count %d, want 8000", h.Count())
	}
}
