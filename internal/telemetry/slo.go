package telemetry

import (
	"sync"
	"time"
)

// SLOConfig shapes an SLOTracker. The objective is availability-style:
// a block is "good" when it was delivered within Target; the error
// budget is 1-Objective of all blocks. Burn rate is reported over two
// rolling windows (multi-window burn-rate alerting): a fast window that
// reacts to incidents and a slow window that tracks sustained
// degradation.
type SLOConfig struct {
	// Target is the latency bound a good block must meet (the serving
	// deadline when unset — callers default it).
	Target time.Duration
	// Objective is the fraction of blocks that must be good
	// (default 0.999).
	Objective float64
	// Fast and Slow are the rolling window lengths (defaults 1m / 10m —
	// short because a vRAN runtime's incidents play out in seconds).
	Fast, Slow time.Duration
	// Granularity is the ring-bucket width (default Fast/12, floor 1s
	// ceiling Fast).
	Granularity time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.999
	}
	if c.Fast <= 0 {
		c.Fast = time.Minute
	}
	if c.Slow <= c.Fast {
		c.Slow = 10 * c.Fast
	}
	if c.Granularity <= 0 {
		c.Granularity = c.Fast / 12
	}
	if c.Granularity < time.Second {
		c.Granularity = time.Second
	}
	if c.Granularity > c.Fast {
		c.Granularity = c.Fast
	}
	return c
}

// sloBucket is one granularity slot of the ring; slot is the absolute
// bucket number (now / granularity) so stale entries self-identify.
type sloBucket struct {
	slot      int64
	good, bad uint64
}

// SLOTracker is a rolling good/bad event counter with burn-rate
// readout: a time-bucketed ring sized to cover the slow window. A nil
// tracker is valid and records nothing.
type SLOTracker struct {
	cfg SLOConfig
	now func() time.Time // injectable for tests

	mu        sync.Mutex
	ring      []sloBucket
	goodTotal uint64
	badTotal  uint64
}

// NewSLOTracker builds a tracker from cfg (zero fields defaulted).
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	n := int(cfg.Slow/cfg.Granularity) + 2
	return &SLOTracker{cfg: cfg, now: time.Now, ring: make([]sloBucket, n)}
}

// Config returns the tracker's effective (defaulted) configuration.
func (s *SLOTracker) Config() SLOConfig {
	if s == nil {
		return SLOConfig{}
	}
	return s.cfg
}

// Observe records one block outcome: good when it was delivered within
// the target latency.
func (s *SLOTracker) Observe(latency time.Duration, delivered bool) {
	if s == nil {
		return
	}
	good := delivered && (s.cfg.Target <= 0 || latency <= s.cfg.Target)
	s.mu.Lock()
	slot := s.now().UnixNano() / int64(s.cfg.Granularity)
	b := &s.ring[int(slot%int64(len(s.ring)))]
	if b.slot != slot {
		*b = sloBucket{slot: slot}
	}
	if good {
		b.good++
		s.goodTotal++
	} else {
		b.bad++
		s.badTotal++
	}
	s.mu.Unlock()
}

// Totals reports the all-time good/bad counts.
func (s *SLOTracker) Totals() (good, bad uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.goodTotal, s.badTotal
}

// Window sums the good/bad counts over the trailing window w.
func (s *SLOTracker) Window(w time.Duration) (good, bad uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slots := int64(w / s.cfg.Granularity)
	if slots < 1 {
		slots = 1
	}
	nowSlot := s.now().UnixNano() / int64(s.cfg.Granularity)
	min := nowSlot - slots + 1
	for i := range s.ring {
		b := &s.ring[i]
		if b.slot >= min && b.slot <= nowSlot {
			good += b.good
			bad += b.bad
		}
	}
	return good, bad
}

// BurnRate reports how fast the error budget is being consumed over
// the trailing window w: observed error rate divided by the budgeted
// error rate (1-objective). 1.0 means burning exactly at budget; 0
// means no errors (or no traffic).
func (s *SLOTracker) BurnRate(w time.Duration) float64 {
	good, bad := s.Window(w)
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - s.cfg.Objective
	return (float64(bad) / float64(total)) / budget
}

// BudgetRemaining reports the fraction of the window's error budget
// still unspent: 1 - BurnRate, floored at 0 (fully burnt) — the gauge a
// dashboard alarms on.
func (s *SLOTracker) BudgetRemaining(w time.Duration) float64 {
	r := 1 - s.BurnRate(w)
	if r < 0 {
		return 0
	}
	return r
}

// Families renders the tracker as vran_slo_* series: the objective and
// target as gauges, all-time good/bad counters, and burn-rate /
// budget-remaining gauges per window.
func (s *SLOTracker) Families() []Family {
	if s == nil {
		return nil
	}
	good, bad := s.Totals()
	return []Family{
		F("vran_slo_target_seconds",
			"Latency bound a good block must meet.",
			Gauge, s.cfg.Target.Seconds()),
		F("vran_slo_objective",
			"Fraction of blocks that must be good.",
			Gauge, s.cfg.Objective),
		{Name: "vran_slo_observed_total", Type: Counter,
			Help: "Blocks judged against the SLO, by verdict.",
			Samples: []Sample{
				{Labels: []Label{L("verdict", "good")}, Value: float64(good)},
				{Labels: []Label{L("verdict", "bad")}, Value: float64(bad)},
			}},
		{Name: "vran_slo_burn_rate", Type: Gauge,
			Help: "Error-budget burn rate (1.0 = burning exactly at budget).",
			Samples: []Sample{
				{Labels: []Label{L("window", "fast")}, Value: s.BurnRate(s.cfg.Fast)},
				{Labels: []Label{L("window", "slow")}, Value: s.BurnRate(s.cfg.Slow)},
			}},
		{Name: "vran_slo_budget_remaining", Type: Gauge,
			Help: "Fraction of the window's error budget still unspent.",
			Samples: []Sample{
				{Labels: []Label{L("window", "fast")}, Value: s.BudgetRemaining(s.cfg.Fast)},
				{Labels: []Label{L("window", "slow")}, Value: s.BudgetRemaining(s.cfg.Slow)},
			}},
	}
}
