package telemetry

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testAdmin(health func() HealthStatus) *AdminServer {
	return NewAdmin(AdminConfig{
		Addr: "127.0.0.1:0",
		Metrics: func() []Family {
			return []Family{F("vran_up", "Up.", Gauge, 1)}
		},
		Snapshot: func() any { return map[string]int{"delivered": 5} },
		Spans:    func() any { return []Span{{Cell: 1, Outcome: "delivered"}} },
		Health:   health,
	})
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	body, _ := io.ReadAll(rec.Result().Body)
	return rec, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	h := testAdmin(nil).Handler()

	rec, body := get(t, h, "/metrics")
	if rec.Code != 200 || !strings.Contains(body, "vran_up 1") {
		t.Errorf("/metrics = %d %q", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}

	rec, body = get(t, h, "/metrics?format=json")
	if rec.Code != 200 || !strings.Contains(body, `"vran_up"`) {
		t.Errorf("/metrics?format=json = %d %q", rec.Code, body)
	}

	rec, body = get(t, h, "/snapshot")
	if rec.Code != 200 || !strings.Contains(body, `"delivered": 5`) {
		t.Errorf("/snapshot = %d %q", rec.Code, body)
	}

	rec, body = get(t, h, "/spans")
	if rec.Code != 200 || !strings.Contains(body, `"delivered"`) {
		t.Errorf("/spans = %d %q", rec.Code, body)
	}

	rec, body = get(t, h, "/healthz")
	if rec.Code != 200 || !strings.Contains(body, `"healthy":true`) {
		t.Errorf("/healthz = %d %q", rec.Code, body)
	}

	rec, body = get(t, h, "/debug/pprof/")
	if rec.Code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", rec.Code)
	}
	rec, _ = get(t, h, "/debug/pprof/cmdline")
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline = %d", rec.Code)
	}
}

func TestAdminUnhealthy(t *testing.T) {
	h := testAdmin(func() HealthStatus {
		return HealthStatus{Healthy: false, Reason: "drop rate 0.80", DropRate: 0.8}
	}).Handler()
	rec, body := get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/healthz code %d, want 503", rec.Code)
	}
	if !strings.Contains(body, "drop rate 0.80") {
		t.Errorf("/healthz body %q lacks reason", body)
	}
}

// TestAdminStartShutdown exercises the real listener lifecycle: bind on
// :0, scrape over TCP, shut down gracefully, verify the port is closed.
func TestAdminStartShutdown(t *testing.T) {
	a := testAdmin(nil)
	if a.Addr() != "" || a.URL() != "" {
		t.Error("address must be empty before Start")
	}
	if err := a.Start(); err != nil {
		t.Fatal(err)
	}
	url := a.URL()
	if url == "" {
		t.Fatal("no bound address after Start")
	}
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "vran_up") {
		t.Errorf("live scrape = %d %q", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(url + "/metrics"); err == nil {
		t.Error("scrape succeeded after shutdown")
	}
	// Shutdown again is a no-op, and on a never-started server too.
	if err := a.Shutdown(ctx); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
	if err := NewAdmin(AdminConfig{}).Shutdown(ctx); err != nil {
		t.Errorf("shutdown of unstarted server: %v", err)
	}
}
