package telemetry

import (
	"sync"
	"testing"
	"time"
)

func span(cell int, q, b, d time.Duration, outcome string) Span {
	sp := Span{Cell: cell, K: 40, Outcome: outcome}
	sp.Stages[SpanQueue] = q
	sp.Stages[SpanBatch] = b
	sp.Stages[SpanDecode] = d
	return sp
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(span(0, 1, 2, 3, "delivered"))
	if tr.Enabled() || tr.SpanCount() != 0 || tr.Recent() != nil ||
		tr.Slowest(SpanQueue) != nil || tr.Summaries() != nil || tr.Families() != nil {
		t.Error("nil tracer must be inert")
	}
}

func TestTracerStageNames(t *testing.T) {
	want := []string{
		"route", "encode-wire", "park", "link", "ingest",
		"queue", "batch", "decode", "compile",
		"harq-retry", "drain", "install",
	}
	for i, n := range want {
		if Stage(i).Name() != n {
			t.Errorf("stage %d named %q, want %q", i, Stage(i).Name(), n)
		}
	}
	if Stage(99).Name() != "unknown" {
		t.Error("out-of-range stage should name as unknown")
	}
	if got := ServeStages(); len(got) != int(NumStages) {
		t.Errorf("ServeStages has %d entries, want %d", len(got), NumStages)
	}
}

func TestTracerRingAndSummaries(t *testing.T) {
	tr := NewTracer(4, 2)
	for i := 1; i <= 6; i++ {
		tr.Record(span(i, time.Duration(i)*time.Millisecond, time.Millisecond, 2*time.Millisecond, "delivered"))
	}
	if tr.SpanCount() != 6 {
		t.Errorf("span count %d, want 6", tr.SpanCount())
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recent))
	}
	// Oldest-first: spans 3,4,5,6 survive.
	for i, sp := range recent {
		if sp.Cell != i+3 {
			t.Errorf("ring[%d].Cell = %d, want %d", i, sp.Cell, i+3)
		}
	}
	sums := tr.Summaries()
	if len(sums) != int(NumStages) {
		t.Fatalf("summaries %d, want %d", len(sums), NumStages)
	}
	if sums[SpanQueue].Count != 6 || sums[SpanDecode].Count != 6 {
		t.Error("summary counts wrong")
	}
	if sums[SpanQueue].Stage != StageQueue {
		t.Errorf("summary stage %q, want %q", sums[SpanQueue].Stage, StageQueue)
	}
	if sums[SpanQueue].P99 < sums[SpanQueue].P50 {
		t.Error("p99 < p50")
	}
	total := span(0, time.Millisecond, time.Millisecond, time.Millisecond, "x").Total()
	if total != 3*time.Millisecond {
		t.Errorf("span total %v, want 3ms", total)
	}
}

// TestTracerSlowestExemplars: the per-stage reservoir must keep exactly
// the slowest-N spans for that stage, slowest first.
func TestTracerSlowestExemplars(t *testing.T) {
	tr := NewTracer(16, 3)
	// Queue waits 1..8 ms in shuffled order.
	for _, ms := range []int{4, 1, 8, 3, 7, 2, 6, 5} {
		tr.Record(span(ms, time.Duration(ms)*time.Millisecond, 0, time.Millisecond, "delivered"))
	}
	slow := tr.Slowest(SpanQueue)
	if len(slow) != 3 {
		t.Fatalf("kept %d exemplars, want 3", len(slow))
	}
	for i, want := range []int{8, 7, 6} {
		if slow[i].Cell != want {
			t.Errorf("slowest[%d] is cell %d, want %d", i, slow[i].Cell, want)
		}
	}
	// Batch stage saw only zero dwell → no exemplars.
	if got := tr.Slowest(SpanBatch); len(got) != 0 {
		t.Errorf("batch stage kept %d exemplars of zero dwell", len(got))
	}
	if tr.Slowest(Stage(99)) != nil {
		t.Error("out-of-range stage should return nil")
	}
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(64, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(span(g, time.Duration(i)*time.Microsecond, time.Microsecond, time.Microsecond, "delivered"))
				if i%50 == 0 {
					tr.Recent()
					tr.Summaries()
					tr.Slowest(SpanQueue)
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.SpanCount() != 4000 {
		t.Errorf("span count %d, want 4000", tr.SpanCount())
	}
	if len(tr.Recent()) != 64 {
		t.Errorf("ring %d, want 64", len(tr.Recent()))
	}
}
