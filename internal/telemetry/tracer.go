package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes the serving stages of a Span.
type Stage int

// Serving stages in pipeline order. The cross-hop prefix (route →
// ingest) is populated only for blocks that crossed the fronthaul
// split; a single-process runtime leaves it zero. SpanCompile is
// out-of-band: it is recorded once per (worker, block size) when the
// decoder compiles a replay program, not on every block's path.
// SpanHARQRetry folds the dwell of failed earlier HARQ attempts into
// the final span. SpanDrain/SpanInstall appear only on coordinator-side
// migration spans.
const (
	SpanRoute Stage = iota
	SpanEncodeWire
	SpanPark
	SpanLink
	SpanIngest
	SpanQueue
	SpanBatch
	SpanDecode
	SpanCompile
	SpanHARQRetry
	SpanDrain
	SpanInstall
	NumStages
)

// Name returns the shared stage vocabulary string.
func (s Stage) Name() string {
	switch s {
	case SpanRoute:
		return StageRoute
	case SpanEncodeWire:
		return StageEncodeWire
	case SpanPark:
		return StagePark
	case SpanLink:
		return StageLink
	case SpanIngest:
		return StageIngest
	case SpanQueue:
		return StageQueue
	case SpanBatch:
		return StageBatch
	case SpanDecode:
		return StageDecode
	case SpanCompile:
		return StageCompile
	case SpanHARQRetry:
		return StageHARQRetry
	case SpanDrain:
		return StageDrain
	case SpanInstall:
		return StageInstall
	}
	return "unknown"
}

// SpanContext is the trace state that crosses a process boundary with a
// block: the fleet-unique trace ID, the parent span on the origin hop,
// and the stage dwell already accumulated upstream. Upstream durations
// are monotonic offsets measured on the clock of whichever host paid
// them — never absolute wall times — so a receiving host folds them in
// without comparing clocks. Start is the trace origin reconstructed on
// the LOCAL clock (receive instant minus the accumulated upstream
// offsets), which keeps every derived stamp monotonic on this host even
// when the origin's wall clock is skewed.
type SpanContext struct {
	TraceID uint64
	Parent  uint64
	Start   time.Time
	// Upstream holds per-stage dwell accumulated before this hop,
	// indexed by Stage (route/encode-wire/park/link/ingest for a frame
	// that just crossed the fronthaul).
	Upstream [NumStages]time.Duration
}

// Valid reports whether the context carries a live trace (untraced
// blocks propagate the zero SpanContext).
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// Span is the record of one transport block's trip through the serving
// runtime: ingress → queue → batcher → decode → delivery. It is a plain
// value (no pointers, no allocation on record) so the hot path can
// build one on the stack and hand it over by copy.
type Span struct {
	// Cell, UE and K identify the block.
	Cell, UE, K int
	// TraceID is the fleet-unique trace this span belongs to (0 for a
	// process-local, untraced block). Parent is the originating span on
	// the previous hop (the coordinator uses the trace ID itself).
	TraceID, Parent uint64
	// Origin names the hop that completed the span (shard name on
	// shipped spans, empty for process-local ones).
	Origin string
	// Start is the trace origin: the Submit instant for a local block,
	// or the reconstructed origin-hop start for a propagated one.
	Start time.Time
	// Stages holds the per-stage dwell times, indexed by Stage.
	Stages [NumStages]time.Duration
	// Iters is the turbo iteration count the decode spent (0 when the
	// block never reached a decoder).
	Iters int
	// Outcome is the block's fate: "delivered", "late" or "expired".
	Outcome string
}

// Total is the span's end-to-end time (sum of stage dwell times).
func (sp Span) Total() time.Duration {
	var t time.Duration
	for _, d := range sp.Stages {
		t += d
	}
	return t
}

// StageSummary is the aggregate view of one stage across all recorded
// spans, the unit both expositions (Prometheus and JSON) render.
type StageSummary struct {
	Stage string        `json:"stage"`
	Count uint64        `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Tracer collects spans: per-stage histograms (lock-free), a bounded
// ring of recent spans, and a slowest-N exemplar reservoir per stage so
// a dashboard can show *which* blocks paid the tail, not just that a
// tail exists. A nil *Tracer is valid and records nothing — tracing is
// disabled by not constructing one.
type Tracer struct {
	hists [NumStages]Hist
	spans atomic.Uint64 // spans recorded (monotonic)

	mu   sync.Mutex
	ring []Span // recent spans, overwritten circularly
	next int
	full bool
	slow [NumStages][]Span // slowest-N by stage dwell, descending
	keep int
}

// NewTracer builds a tracer keeping the ringSize most recent spans and
// the slowestN slowest spans per stage (defaults 256 and 8 when <= 0).
func NewTracer(ringSize, slowestN int) *Tracer {
	if ringSize <= 0 {
		ringSize = 256
	}
	if slowestN <= 0 {
		slowestN = 8
	}
	return &Tracer{ring: make([]Span, ringSize), keep: slowestN}
}

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t != nil }

// Record folds one completed span into the aggregates. Safe for
// concurrent use; a no-op on a nil tracer.
func (t *Tracer) Record(sp Span) {
	if t == nil {
		return
	}
	for st := Stage(0); st < NumStages; st++ {
		if sp.Stages[st] > 0 {
			t.hists[st].Observe(sp.Stages[st])
		}
	}
	t.spans.Add(1)
	t.mu.Lock()
	t.ring[t.next] = sp
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	for st := Stage(0); st < NumStages; st++ {
		t.insertSlow(st, sp)
	}
	t.mu.Unlock()
}

// insertSlow keeps slow[st] as the descending slowest-keep spans by the
// stage's dwell time. Called with mu held.
func (t *Tracer) insertSlow(st Stage, sp Span) {
	d := sp.Stages[st]
	if d == 0 {
		return
	}
	s := t.slow[st]
	if len(s) == t.keep && d <= s[len(s)-1].Stages[st] {
		return
	}
	i := len(s)
	for i > 0 && s[i-1].Stages[st] < d {
		i--
	}
	s = append(s, Span{})
	copy(s[i+1:], s[i:])
	s[i] = sp
	if len(s) > t.keep {
		s = s[:t.keep]
	}
	t.slow[st] = s
}

// SpanCount reports how many spans were recorded since construction.
func (t *Tracer) SpanCount() uint64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// Recent returns the ring contents, oldest first.
func (t *Tracer) Recent() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.ring[:t.next]...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Slowest returns the slowest recorded spans for stage st, slowest
// first.
func (t *Tracer) Slowest(st Stage) []Span {
	if t == nil || st < 0 || st >= NumStages {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.slow[st]...)
}

// StageHist exposes the stage's histogram (nil tracer → nil).
func (t *Tracer) StageHist(st Stage) *Hist {
	if t == nil || st < 0 || st >= NumStages {
		return nil
	}
	return &t.hists[st]
}

// Summaries renders every stage's aggregate, in pipeline order.
func (t *Tracer) Summaries() []StageSummary {
	if t == nil {
		return nil
	}
	out := make([]StageSummary, 0, int(NumStages))
	for st := Stage(0); st < NumStages; st++ {
		h := &t.hists[st]
		out = append(out, StageSummary{
			Stage: st.Name(),
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Percentile(0.50),
			P90:   h.Percentile(0.90),
			P99:   h.Percentile(0.99),
		})
	}
	return out
}
