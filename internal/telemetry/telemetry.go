// Package telemetry is the observability layer of the serving runtime:
// request-scoped span tracing with per-stage attribution, a dependency-
// free Prometheus/JSON exposition model, and an admin HTTP server that
// makes a running vranserve scrapeable while it serves.
//
// The paper's whole argument is an attribution exercise — top-down
// counters and per-stage cycle accounting are what localized the data-
// arrangement bottleneck — and this package extends that methodology
// from one-shot offline runs (vranpipe, vranbench) to the live runtime:
// the same stage vocabulary, exported continuously.
//
// The package is a leaf: it depends only on the standard library and
// internal/uarch (for rendering simulator counters as gauges), so the
// runtime packages (internal/ran, internal/pipeline) can import it
// without cycles.
package telemetry

// Serving-side stage names. StageDecode is shared with the offline
// pipeline (internal/pipeline wraps its turbo decoding in a
// runner.section of the same name), so a vranpipe per-stage report and
// a live /metrics scrape speak one vocabulary and can be diffed.
const (
	// StageQueue is the time from Submit until the dispatcher drains the
	// block out of its cell's ingress queue.
	StageQueue = "queue"
	// StageBatch is the time a block waits in the lane-fill batcher plus
	// the batch channel, until a worker starts decoding it.
	StageBatch = "batch"
	// StageDecode is the lane-parallel turbo decode itself.
	StageDecode = "decode"
	// StageCompile is the one-time trace-replay program compilation a
	// worker pays on the first decode of a block size (see
	// internal/simd/program); later decodes of that size replay the
	// compiled program and never revisit this stage.
	StageCompile = "compile"
)

// ServeStages lists the serving-path stages in pipeline order (compile
// last: it happens at most once per block size, off the per-block path).
func ServeStages() []string { return []string{StageQueue, StageBatch, StageDecode, StageCompile} }
