// Package telemetry is the observability layer of the serving runtime:
// request-scoped span tracing with per-stage attribution (within one
// process and across the fronthaul split), a dependency-free
// Prometheus/JSON exposition model, rolling SLO burn-rate accounting,
// and an admin HTTP server that makes a running vranserve scrapeable
// while it serves.
//
// The paper's whole argument is an attribution exercise — top-down
// counters and per-stage cycle accounting are what localized the data-
// arrangement bottleneck — and this package extends that methodology
// from one-shot offline runs (vranpipe, vranbench) to the live runtime:
// the same stage vocabulary, exported continuously, and since the fleet
// split (internal/shard) carried across process boundaries by a
// propagatable SpanContext.
//
// The package is a leaf: it depends only on the standard library and
// internal/uarch (for rendering simulator counters as gauges), so the
// runtime packages (internal/ran, internal/pipeline) can import it
// without cycles.
package telemetry

// Stage names: the shared vocabulary between the offline pipeline
// report, the live /metrics scrape and the fleet hop attribution.
// StageDecode is shared with the offline pipeline (internal/pipeline
// wraps its turbo decoding in a runner.section of the same name), so a
// vranpipe per-stage report and a live scrape can be diffed.
const (
	// StageRoute is the coordinator-side routing decision: Submit entry
	// until the data frame starts encoding (DU side of the split).
	StageRoute = "route"
	// StageEncodeWire is the fronthaul frame serialization: packing the
	// soft word into its int8 wire form.
	StageEncodeWire = "encode-wire"
	// StagePark is the time a frame spent held in the coordinator's
	// migration parking buffer before being flushed to the new owner.
	StagePark = "park"
	// StageLink is the fronthaul dwell: origin send stamp until the
	// shard read the frame. Computed from the propagated origin offset
	// and clamped at zero, so cross-host clock skew can never make it
	// negative.
	StageLink = "link"
	// StageIngest is the shard-side frame decode: wire bytes back into
	// a soft word, up to the Submit call.
	StageIngest = "ingest"
	// StageQueue is the time from Submit until the dispatcher drains the
	// block out of its cell's ingress queue.
	StageQueue = "queue"
	// StageBatch is the time a block waits in the lane-fill batcher plus
	// the batch channel, until a worker starts decoding it.
	StageBatch = "batch"
	// StageDecode is the lane-parallel turbo decode itself.
	StageDecode = "decode"
	// StageCompile is the one-time trace-replay program compilation a
	// worker pays on the first decode of a block size (see
	// internal/simd/program); later decodes of that size replay the
	// compiled program and never revisit this stage.
	StageCompile = "compile"
	// StageHARQRetry is the dwell a block accumulated in earlier HARQ
	// attempts: for a delivered retry, every prior attempt's queue,
	// batch and decode time is folded here so the final span's stages
	// still sum to the block's end-to-end latency.
	StageHARQRetry = "harq-retry"
	// StageDrain is a migration's source-side drain RPC (coordinator
	// view), recorded once per migration, not per block.
	StageDrain = "drain"
	// StageInstall is a migration's target-side state forward + commit
	// (coordinator view), recorded once per migration.
	StageInstall = "install"
)

// ServeStages lists every span stage in pipeline order: the cross-hop
// prefix (route → ingest), the per-runtime serving path (queue →
// compile), then the out-of-band stages (HARQ retries and migration
// steps).
func ServeStages() []string {
	return []string{
		StageRoute, StageEncodeWire, StagePark, StageLink, StageIngest,
		StageQueue, StageBatch, StageDecode, StageCompile,
		StageHARQRetry, StageDrain, StageInstall,
	}
}
