package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the bucket count of Hist: 64 octaves of a nanosecond
// value, each split into 8 sub-buckets.
const HistBuckets = 64 * 8

// Hist is a lock-free HDR-style latency histogram: one atomic counter
// per (octave, 1/8-octave sub-bucket) of a nanosecond value. Relative
// error of a reconstructed percentile is bounded by one sub-bucket
// (~12.5 %), plenty for serving dashboards. The zero value is ready to
// use; all methods are safe for concurrent use.
type Hist struct {
	buckets [HistBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Int64
}

// HistIndex maps a nanosecond value to its bucket index.
func HistIndex(ns int64) int {
	if ns < 8 {
		return 0
	}
	e := bits.Len64(uint64(ns)) // 2^(e-1) <= ns < 2^e, e >= 4
	sub := (uint64(ns) >> (e - 4)) & 7
	idx := (e-4)*8 + int(sub)
	if idx >= HistBuckets {
		return HistBuckets - 1
	}
	return idx
}

// HistValue returns the representative (midpoint) value of bucket idx,
// saturating at MaxInt64 for the top octaves no int64 duration reaches.
func HistValue(idx int) int64 {
	e := idx / 8
	sub := idx % 8
	if e == 0 && sub == 0 {
		return 4
	}
	v := (float64(8+sub) + 0.5) * float64(uint64(1)<<e)
	if v >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return int64(v)
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	h.buckets[HistIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Count reports the number of observations.
func (h *Hist) Count() uint64 { return h.count.Load() }

// Mean is the exact (not bucketed) average of all observations.
func (h *Hist) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / int64(n))
}

// Buckets snapshots the raw bucket counters, trimmed of trailing
// zeros so sparse histograms stay cheap to ship in a snapshot RPC.
// The result feeds MergeBuckets/PercentileFromBuckets, which is how
// per-shard histograms are folded into correct fleet-wide percentiles
// (percentiles themselves do not compose; bucket counts do).
func (h *Hist) Buckets() []uint64 {
	var out []uint64
	for i := range h.buckets {
		if v := h.buckets[i].Load(); v != 0 {
			if out == nil {
				out = make([]uint64, 0, HistBuckets)
			}
			for len(out) < i {
				out = append(out, 0)
			}
			out = append(out, v)
		}
	}
	return out
}

// MergeBuckets adds src into dst element-wise, growing dst as needed,
// and returns the merged slice. Either argument may be nil or trimmed
// (as produced by Buckets).
func MergeBuckets(dst, src []uint64) []uint64 {
	if len(src) > len(dst) {
		grown := make([]uint64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// PercentileFromBuckets reconstructs quantile q (0..1) from bucket
// counters as produced by Buckets (possibly merged across histograms),
// using the same midpoint rule as Hist.Percentile.
func PercentileFromBuckets(buckets []uint64, q float64) time.Duration {
	var total uint64
	for _, v := range buckets {
		total += v
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	last := 0
	for i, v := range buckets {
		if v == 0 {
			continue
		}
		cum += v
		last = i
		if cum > target {
			return time.Duration(HistValue(i))
		}
	}
	return time.Duration(HistValue(last))
}

// Percentile reconstructs quantile q (0..1) from the live counters.
func (h *Hist) Percentile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > target {
			return time.Duration(HistValue(i))
		}
	}
	return time.Duration(HistValue(HistBuckets - 1))
}
