package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"vransim/internal/uarch"
)

func TestWriteProm(t *testing.T) {
	fams := []Family{
		F("vran_up", "Uptime.", Gauge, 12.5),
		{Name: "vran_blocks_total", Help: "Blocks.", Type: Counter, Samples: []Sample{
			{Labels: []Label{L("cell", "0"), L("cause", "backlog")}, Value: 3},
			{Labels: []Label{L("cell", "1"), L("cause", `we"ird`)}, Value: 4},
		}},
		{Name: "vran_empty", Type: Gauge}, // no samples → omitted entirely
	}
	var sb strings.Builder
	if err := WriteProm(&sb, fams); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP vran_up Uptime.",
		"# TYPE vran_up gauge",
		"vran_up 12.5",
		"# TYPE vran_blocks_total counter",
		`vran_blocks_total{cell="0",cause="backlog"} 3`,
		`vran_blocks_total{cell="1",cause="we\"ird"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "vran_empty") {
		t.Error("family with no samples must not be rendered")
	}
	// Integer-valued floats render without a decimal point.
	if strings.Contains(out, "3.000") {
		t.Error("integer value rendered with decimals")
	}
}

func TestWritePromNaN(t *testing.T) {
	var sb strings.Builder
	if err := WriteProm(&sb, []Family{F("vran_x", "", Gauge, math.NaN())}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "vran_x 0") {
		t.Errorf("NaN should render as 0, got %q", sb.String())
	}
}

func TestWriteJSON(t *testing.T) {
	fams := []Family{
		{Name: "vran_drops_total", Help: "Drops.", Type: Counter, Samples: []Sample{
			{Labels: []Label{L("cause", "late")}, Value: 7},
		}},
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, fams); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		Name    string `json:"name"`
		Type    string `json:"type"`
		Samples []struct {
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
		} `json:"samples"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(got) != 1 || got[0].Name != "vran_drops_total" || got[0].Type != "counter" {
		t.Fatalf("unexpected families: %+v", got)
	}
	if got[0].Samples[0].Labels["cause"] != "late" || got[0].Samples[0].Value != 7 {
		t.Errorf("sample mangled: %+v", got[0].Samples[0])
	}
}

func TestTracerFamilies(t *testing.T) {
	tr := NewTracer(8, 2)
	sp := Span{Outcome: "delivered"}
	sp.Stages[SpanQueue] = 2 * time.Millisecond
	sp.Stages[SpanDecode] = time.Millisecond
	tr.Record(sp)
	fams := tr.Families()
	if len(fams) != 2 {
		t.Fatalf("tracer families %d, want 2", len(fams))
	}
	var sb strings.Builder
	if err := WriteProm(&sb, fams); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`vran_stage_spans_total{stage="queue"} 1`,
		`vran_stage_spans_total{stage="decode"} 1`,
		`vran_stage_latency_seconds{stage="queue",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestUarchFamilies(t *testing.T) {
	r := uarch.Result{Cycles: 1000, Insts: 2500, FrequencyGHz: 3.2, StoreBytes: 4000}
	r.TopDown = uarch.TopDown{Retiring: 0.6, BackendBound: 0.3, CoreBound: 0.2, MemoryBound: 0.1, FrontendBound: 0.05, BadSpec: 0.05}
	r.PortBusy[0] = 500
	fams := UarchFamilies(r, "calibration")
	var sb strings.Builder
	if err := WriteProm(&sb, fams); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`vran_uarch_ipc{source="calibration"} 2.5`,
		`vran_uarch_topdown_fraction{source="calibration",category="backend_bound"} 0.3`,
		`vran_uarch_port_utilization{source="calibration",port="0"} 0.5`,
		`vran_uarch_store_bits_per_cycle{source="calibration"} 32`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
