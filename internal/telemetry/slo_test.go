package telemetry

import (
	"math"
	"testing"
	"time"
)

// fakeClock steps an SLOTracker's injected clock deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func testSLO(cfg SLOConfig) (*SLOTracker, *fakeClock) {
	s := NewSLOTracker(cfg)
	c := newFakeClock()
	s.now = c.now
	return s, c
}

func TestSLODefaults(t *testing.T) {
	s := NewSLOTracker(SLOConfig{})
	cfg := s.Config()
	if cfg.Objective != 0.999 || cfg.Fast != time.Minute || cfg.Slow != 10*time.Minute {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.Granularity != 5*time.Second {
		t.Errorf("granularity %v, want Fast/12 = 5s", cfg.Granularity)
	}
}

func TestSLOVerdicts(t *testing.T) {
	s, _ := testSLO(SLOConfig{Target: 10 * time.Millisecond})
	s.Observe(5*time.Millisecond, true)  // good
	s.Observe(10*time.Millisecond, true) // good: at target
	s.Observe(15*time.Millisecond, true) // bad: late
	s.Observe(5*time.Millisecond, false) // bad: dropped
	good, bad := s.Totals()
	if good != 2 || bad != 2 {
		t.Errorf("totals = %d/%d, want 2/2", good, bad)
	}
}

// TestSLOWindowRoll: observations age out of the fast window but stay
// in the slow one; burn rates follow.
func TestSLOWindowRoll(t *testing.T) {
	cfg := SLOConfig{Target: time.Millisecond, Objective: 0.9,
		Fast: time.Minute, Slow: 10 * time.Minute, Granularity: time.Second}
	s, clk := testSLO(cfg)
	for i := 0; i < 80; i++ {
		s.Observe(time.Microsecond, true)
	}
	for i := 0; i < 20; i++ {
		s.Observe(time.Second, true) // late = bad
	}
	// 20% errors vs a 10% budget: burning at 2x in both windows.
	if r := s.BurnRate(cfg.Fast); math.Abs(r-2.0) > 1e-9 {
		t.Errorf("fast burn = %v, want 2.0", r)
	}
	if r := s.BudgetRemaining(cfg.Fast); r != 0 {
		t.Errorf("budget remaining = %v, want 0 (over-burning)", r)
	}
	// Two minutes later the fast window is clean, the slow one still sees
	// the errors.
	clk.advance(2 * time.Minute)
	if g, b := s.Window(cfg.Fast); g != 0 || b != 0 {
		t.Errorf("fast window after roll = %d/%d, want empty", g, b)
	}
	if g, b := s.Window(cfg.Slow); g != 80 || b != 20 {
		t.Errorf("slow window = %d/%d, want 80/20", g, b)
	}
	if r := s.BurnRate(cfg.Fast); r != 0 {
		t.Errorf("fast burn after roll = %v, want 0", r)
	}
	if r := s.BurnRate(cfg.Slow); math.Abs(r-2.0) > 1e-9 {
		t.Errorf("slow burn after roll = %v, want 2.0", r)
	}
	// Totals never age out.
	if good, bad := s.Totals(); good != 80 || bad != 20 {
		t.Errorf("totals = %d/%d, want 80/20", good, bad)
	}
}

// TestSLORingReuse: a slot that wraps around the ring must forget the
// epoch it replaced rather than double-count it.
func TestSLORingReuse(t *testing.T) {
	cfg := SLOConfig{Fast: time.Minute, Slow: 2 * time.Minute, Granularity: time.Second}
	s, clk := testSLO(cfg)
	s.Observe(0, false)
	// Far past the slow window: same ring slot index, different epoch.
	clk.advance(time.Duration(len(s.ring)) * time.Second)
	s.Observe(0, true)
	if g, b := s.Window(cfg.Slow); g != 1 || b != 0 {
		t.Errorf("slow window = %d/%d, want 1/0 (stale slot must be evicted)", g, b)
	}
}

func TestSLONilSafe(t *testing.T) {
	var s *SLOTracker
	s.Observe(time.Second, true)
	if g, b := s.Totals(); g != 0 || b != 0 {
		t.Error("nil tracker should report zeros")
	}
	if s.Families() != nil {
		t.Error("nil tracker should render no families")
	}
}

func TestSLOFamilies(t *testing.T) {
	s, _ := testSLO(SLOConfig{Target: 10 * time.Millisecond, Objective: 0.99})
	for i := 0; i < 99; i++ {
		s.Observe(time.Millisecond, true)
	}
	s.Observe(time.Millisecond, false)
	fams := s.Families()
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"vran_slo_target_seconds", "vran_slo_objective", "vran_slo_observed_total",
		"vran_slo_burn_rate", "vran_slo_budget_remaining",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("family %s missing", want)
		}
	}
	burn := byName["vran_slo_burn_rate"]
	if len(burn.Samples) != 2 {
		t.Fatalf("burn rate has %d samples, want fast+slow", len(burn.Samples))
	}
	// 1% errors against a 1% budget: burning at exactly 1.0.
	if v := burn.Samples[0].Value; math.Abs(v-1.0) > 1e-9 {
		t.Errorf("fast burn sample = %v, want 1.0", v)
	}
	if v := byName["vran_slo_budget_remaining"].Samples[0].Value; math.Abs(v) > 1e-9 {
		t.Errorf("fast budget remaining = %v, want 0", v)
	}
}
