package transport

import (
	"math/rand"
	"testing"
)

func TestPoissonMeanAndReplay(t *testing.T) {
	const mean = 2.5
	const n = 20000
	draw := func(seed int64) (sum int, seq []int) {
		p := NewPoissonProcess(mean, rand.New(rand.NewSource(seed)))
		seq = make([]int, n)
		for i := range seq {
			seq[i] = p.Next()
			sum += seq[i]
		}
		return
	}
	sum, seq1 := draw(42)
	got := float64(sum) / n
	if got < mean*0.95 || got > mean*1.05 {
		t.Errorf("empirical mean %.3f, want ~%.1f", got, mean)
	}
	// Same seed -> identical arrival pattern (reproducibility is the
	// whole point of injectable randomness).
	_, seq2 := draw(42)
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("same-seed processes diverge at TTI %d", i)
		}
	}
	if p := NewPoissonProcess(0, rand.New(rand.NewSource(1))); p.Next() != 0 {
		t.Error("zero-mean process should emit nothing")
	}
}

func TestBurstyLongRunMean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBurstyProcess(8, 0.5, 10, 30, rng)
	const n = 60000
	sum := 0
	for i := 0; i < n; i++ {
		sum += b.Next()
	}
	want := b.MeanRate() // (8*10 + 0.5*30) / 40 = 2.375
	got := float64(sum) / n
	if got < want*0.85 || got > want*1.15 {
		t.Errorf("bursty empirical mean %.3f, want ~%.3f", got, want)
	}
}

func TestBurstyIsBurstier(t *testing.T) {
	// Same long-run mean, but the bursty process must have a heavier
	// per-TTI variance than the Poisson one (that is what it is for).
	const n = 40000
	variance := func(next func() int) float64 {
		var sum, sq float64
		for i := 0; i < n; i++ {
			v := float64(next())
			sum += v
			sq += v * v
		}
		m := sum / n
		return sq/n - m*m
	}
	p := NewPoissonProcess(2, rand.New(rand.NewSource(3)))
	b := NewBurstyProcess(8, 0, 10, 30, rand.New(rand.NewSource(3)))
	if b.MeanRate() != 2 {
		t.Fatalf("test setup: bursty mean %.2f, want 2", b.MeanRate())
	}
	vp, vb := variance(p.Next), variance(b.Next)
	if vb <= vp {
		t.Errorf("bursty variance %.2f not above poisson %.2f", vb, vp)
	}
}

func TestNewGeneratorRand(t *testing.T) {
	g1 := NewGeneratorRand(UDP, rand.New(rand.NewSource(5)))
	g2 := NewGeneratorRand(UDP, rand.New(rand.NewSource(5)))
	p1, err := g1.Next(256)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g2.Next(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 256 || string(p1) != string(p2) {
		t.Error("same-rng generators should produce identical packets")
	}
	if _, err := Parse(p1); err != nil {
		t.Errorf("generated packet does not parse: %v", err)
	}
}
