package transport

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUDPPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Proto: UDP, SrcIP: [4]byte{10, 0, 0, 2}, DstIP: [4]byte{10, 0, 0, 1},
		SrcPort: 1234, DstPort: 5678, Payload: []byte("payload bytes"),
	}
	b := p.Marshal()
	if len(b) != IPv4HeaderLen+UDPHeaderLen+len(p.Payload) {
		t.Fatalf("marshaled length %d", len(b))
	}
	got, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != UDP || got.SrcPort != 1234 || got.DstPort != 5678 || !bytes.Equal(got.Payload, p.Payload) {
		t.Error("UDP roundtrip mismatch")
	}
}

func TestTCPPacketRoundTrip(t *testing.T) {
	p := &Packet{
		Proto: TCP, SrcIP: [4]byte{192, 168, 0, 7}, DstIP: [4]byte{8, 8, 8, 8},
		SrcPort: 40000, DstPort: 443, Seq: 0xdeadbeef, Payload: bytes.Repeat([]byte{7}, 100),
	}
	got, err := Parse(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != TCP || got.Seq != 0xdeadbeef || !bytes.Equal(got.Payload, p.Payload) {
		t.Error("TCP roundtrip mismatch")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	p := &Packet{Proto: UDP, Payload: []byte{1, 2, 3, 4}}
	b := p.Marshal()
	for _, off := range []int{5, 12, 25, len(b) - 1} {
		c := append([]byte(nil), b...)
		c[off] ^= 0x40
		if _, err := Parse(c); err == nil {
			t.Errorf("corruption at byte %d accepted", off)
		}
	}
	if _, err := Parse(b[:10]); err == nil {
		t.Error("short packet accepted")
	}
	// Wrong total length.
	if _, err := Parse(append(b, 0)); err == nil {
		t.Error("padded packet accepted")
	}
}

func TestGTPRoundTrip(t *testing.T) {
	inner := []byte("inner ip packet")
	enc := GTPEncap(0x11223344, inner)
	teid, got, err := GTPDecap(enc)
	if err != nil {
		t.Fatal(err)
	}
	if teid != 0x11223344 || !bytes.Equal(got, inner) {
		t.Error("GTP roundtrip mismatch")
	}
	if _, _, err := GTPDecap(enc[:4]); err == nil {
		t.Error("short GTP accepted")
	}
	enc[1] = 0x01
	if _, _, err := GTPDecap(enc); err == nil {
		t.Error("non-G-PDU accepted")
	}
}

func TestGeneratorSizes(t *testing.T) {
	for _, proto := range []Proto{UDP, TCP} {
		g := NewGenerator(proto, 1)
		for _, size := range StandardPacketSizes {
			b, err := g.Next(size)
			if err != nil {
				t.Fatalf("%v %d: %v", proto, size, err)
			}
			if len(b) != size {
				t.Errorf("%v: generated %d bytes, want %d", proto, len(b), size)
			}
			if _, err := Parse(b); err != nil {
				t.Errorf("%v %d: generated packet unparseable: %v", proto, size, err)
			}
		}
		if _, err := g.Next(10); err == nil {
			t.Error("sub-header size accepted")
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, _ := NewGenerator(UDP, 7).Next(256)
	b, _ := NewGenerator(UDP, 7).Next(256)
	if !bytes.Equal(a, b) {
		t.Error("generator not deterministic for equal seeds")
	}
}

func TestEPCPathTraverse(t *testing.T) {
	g := NewGenerator(UDP, 2)
	ip, _ := g.Next(512)
	e := &EPCPath{SGWTEID: 100, PGWTEID: 200, HopDelayUs: 50}
	out, err := e.Traverse(ip)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, ip) {
		t.Error("EPC path altered the packet")
	}
	if e.PathLatencyUs() != 100 {
		t.Errorf("path latency %f, want 100", e.PathLatencyUs())
	}
}

// Property: marshal/parse is the identity on payloads for both protocols.
func TestPacketProperty(t *testing.T) {
	f := func(payload []byte, tcp bool, sp, dp uint16) bool {
		proto := UDP
		if tcp {
			proto = TCP
		}
		p := &Packet{Proto: proto, SrcPort: sp, DstPort: dp, Payload: payload}
		got, err := Parse(p.Marshal())
		if err != nil {
			return false
		}
		return got.SrcPort == sp && got.DstPort == dp && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProtoString(t *testing.T) {
	if UDP.String() != "UDP" || TCP.String() != "TCP" {
		t.Error("Proto names wrong")
	}
}
