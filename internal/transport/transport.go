// Package transport builds and parses the packets that traverse the
// vRAN: IPv4 with UDP or TCP payloads generated at the UE side, and the
// GTP-U-style tunnel encapsulation the EPC applies between the S-GW and
// P-GW hops of the paper's Figure 1 topology.
package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Proto selects the transport protocol of a generated packet.
type Proto int

// Supported transport protocols.
const (
	UDP Proto = iota
	TCP
)

// String names the protocol.
func (p Proto) String() string {
	if p == UDP {
		return "UDP"
	}
	return "TCP"
}

// Header lengths in octets.
const (
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20
	GTPHeaderLen  = 8
)

// checksum16 is the Internet ones'-complement checksum.
func checksum16(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i:]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Packet describes one generated packet.
type Packet struct {
	Proto   Proto
	SrcIP   [4]byte
	DstIP   [4]byte
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Payload []byte
}

// Marshal renders the packet as IPv4 bytes with valid checksums.
func (p *Packet) Marshal() []byte {
	var l4 []byte
	switch p.Proto {
	case UDP:
		l4 = make([]byte, UDPHeaderLen+len(p.Payload))
		binary.BigEndian.PutUint16(l4[0:], p.SrcPort)
		binary.BigEndian.PutUint16(l4[2:], p.DstPort)
		binary.BigEndian.PutUint16(l4[4:], uint16(len(l4)))
		copy(l4[UDPHeaderLen:], p.Payload)
		binary.BigEndian.PutUint16(l4[6:], p.l4Checksum(l4, 17))
	case TCP:
		l4 = make([]byte, TCPHeaderLen+len(p.Payload))
		binary.BigEndian.PutUint16(l4[0:], p.SrcPort)
		binary.BigEndian.PutUint16(l4[2:], p.DstPort)
		binary.BigEndian.PutUint32(l4[4:], p.Seq)
		l4[12] = 5 << 4 // data offset
		l4[13] = 0x18   // PSH|ACK
		binary.BigEndian.PutUint16(l4[14:], 65535)
		copy(l4[TCPHeaderLen:], p.Payload)
		binary.BigEndian.PutUint16(l4[16:], p.l4Checksum(l4, 6))
	}
	ip := make([]byte, IPv4HeaderLen, IPv4HeaderLen+len(l4))
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:], uint16(IPv4HeaderLen+len(l4)))
	ip[8] = 64 // TTL
	if p.Proto == UDP {
		ip[9] = 17
	} else {
		ip[9] = 6
	}
	copy(ip[12:16], p.SrcIP[:])
	copy(ip[16:20], p.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:], checksum16(ip))
	return append(ip, l4...)
}

// l4Checksum computes the UDP/TCP checksum with the IPv4 pseudo-header.
func (p *Packet) l4Checksum(l4 []byte, proto byte) uint16 {
	pseudo := make([]byte, 12+len(l4))
	copy(pseudo[0:4], p.SrcIP[:])
	copy(pseudo[4:8], p.DstIP[:])
	pseudo[9] = proto
	binary.BigEndian.PutUint16(pseudo[10:], uint16(len(l4)))
	copy(pseudo[12:], l4)
	return checksum16(pseudo)
}

// Parse validates an IPv4 packet and returns its decoded form.
func Parse(b []byte) (*Packet, error) {
	if len(b) < IPv4HeaderLen {
		return nil, fmt.Errorf("transport: short IP packet (%d)", len(b))
	}
	if b[0]>>4 != 4 {
		return nil, fmt.Errorf("transport: not IPv4")
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total != len(b) {
		return nil, fmt.Errorf("transport: IP length %d != %d", total, len(b))
	}
	if checksum16(b[:IPv4HeaderLen]) != 0 {
		return nil, fmt.Errorf("transport: IP header checksum failed")
	}
	p := &Packet{}
	copy(p.SrcIP[:], b[12:16])
	copy(p.DstIP[:], b[16:20])
	l4 := b[IPv4HeaderLen:]
	switch b[9] {
	case 17:
		p.Proto = UDP
		if len(l4) < UDPHeaderLen {
			return nil, fmt.Errorf("transport: short UDP")
		}
		p.SrcPort = binary.BigEndian.Uint16(l4[0:])
		p.DstPort = binary.BigEndian.Uint16(l4[2:])
		if int(binary.BigEndian.Uint16(l4[4:])) != len(l4) {
			return nil, fmt.Errorf("transport: UDP length field %d != %d", binary.BigEndian.Uint16(l4[4:]), len(l4))
		}
		if p.l4Checksum(zeroChecksum(l4, 6), 17) != binary.BigEndian.Uint16(l4[6:]) {
			return nil, fmt.Errorf("transport: UDP checksum failed")
		}
		p.Payload = l4[UDPHeaderLen:]
	case 6:
		p.Proto = TCP
		if len(l4) < TCPHeaderLen {
			return nil, fmt.Errorf("transport: short TCP")
		}
		p.SrcPort = binary.BigEndian.Uint16(l4[0:])
		p.DstPort = binary.BigEndian.Uint16(l4[2:])
		p.Seq = binary.BigEndian.Uint32(l4[4:])
		if p.l4Checksum(zeroChecksum(l4, 16), 6) != binary.BigEndian.Uint16(l4[16:]) {
			return nil, fmt.Errorf("transport: TCP checksum failed")
		}
		p.Payload = l4[TCPHeaderLen:]
	default:
		return nil, fmt.Errorf("transport: protocol %d unsupported", b[9])
	}
	return p, nil
}

// zeroChecksum returns a copy of l4 with the checksum field at off
// zeroed, for verification.
func zeroChecksum(l4 []byte, off int) []byte {
	c := append([]byte(nil), l4...)
	c[off] = 0
	c[off+1] = 0
	return c
}

// ------------------------------------------------------------- GTP-U

// GTPEncap wraps an IP packet in a GTP-U-style tunnel header with the
// given tunnel endpoint id, as the S-GW/P-GW hops do.
func GTPEncap(teid uint32, inner []byte) []byte {
	out := make([]byte, GTPHeaderLen+len(inner))
	out[0] = 0x30 // version 1, PT=1
	out[1] = 0xff // G-PDU
	binary.BigEndian.PutUint16(out[2:], uint16(len(inner)))
	binary.BigEndian.PutUint32(out[4:], teid)
	copy(out[GTPHeaderLen:], inner)
	return out
}

// GTPDecap removes the tunnel header, returning the TEID and inner
// packet.
func GTPDecap(b []byte) (uint32, []byte, error) {
	if len(b) < GTPHeaderLen {
		return 0, nil, fmt.Errorf("transport: short GTP packet")
	}
	if b[0] != 0x30 || b[1] != 0xff {
		return 0, nil, fmt.Errorf("transport: not a GTP-U G-PDU")
	}
	n := int(binary.BigEndian.Uint16(b[2:]))
	if n != len(b)-GTPHeaderLen {
		return 0, nil, fmt.Errorf("transport: GTP length %d != %d", n, len(b)-GTPHeaderLen)
	}
	return binary.BigEndian.Uint32(b[4:]), b[GTPHeaderLen:], nil
}

// ---------------------------------------------------------- generator

// StandardPacketSizes is the sweep of Figure 13.
var StandardPacketSizes = []int{64, 128, 256, 512, 1024, 1500}

// Generator produces deterministic test traffic.
type Generator struct {
	Proto Proto
	rng   *rand.Rand
	seq   uint32
}

// NewGenerator builds a generator for the given protocol and seed.
func NewGenerator(p Proto, seed int64) *Generator {
	return &Generator{Proto: p, rng: rand.New(rand.NewSource(seed))}
}

// Next returns a marshaled packet whose total IP length is sizeBytes.
func (g *Generator) Next(sizeBytes int) ([]byte, error) {
	hdr := IPv4HeaderLen + UDPHeaderLen
	if g.Proto == TCP {
		hdr = IPv4HeaderLen + TCPHeaderLen
	}
	if sizeBytes < hdr {
		return nil, fmt.Errorf("transport: size %d below header overhead %d", sizeBytes, hdr)
	}
	payload := make([]byte, sizeBytes-hdr)
	for i := range payload {
		payload[i] = byte(g.rng.Intn(256))
	}
	g.seq++
	p := &Packet{
		Proto:   g.Proto,
		SrcIP:   [4]byte{10, 0, 0, 2},
		DstIP:   [4]byte{10, 0, 0, 1},
		SrcPort: 40000,
		DstPort: 5001,
		Seq:     g.seq,
		Payload: payload,
	}
	return p.Marshal(), nil
}

// EPCPath models the core-network hops of Figure 1: eNB -> S-GW -> P-GW.
// Each hop decapsulates/re-encapsulates the GTP tunnel; PathLatency
// returns the fixed processing delay the hops add.
type EPCPath struct {
	// SGWTEID and PGWTEID are the tunnel ids of the two hops.
	SGWTEID, PGWTEID uint32
	// HopDelayUs is the per-hop processing delay in microseconds (the
	// EPC runs on its own wimpy node in the testbed).
	HopDelayUs float64
}

// Traverse carries an uplink IP packet through the tunnel hops,
// returning the packet as delivered to the external network.
func (e *EPCPath) Traverse(ip []byte) ([]byte, error) {
	// eNB -> S-GW
	t1 := GTPEncap(e.SGWTEID, ip)
	teid, inner, err := GTPDecap(t1)
	if err != nil || teid != e.SGWTEID {
		return nil, fmt.Errorf("transport: S-GW decap failed: %v", err)
	}
	// S-GW -> P-GW
	t2 := GTPEncap(e.PGWTEID, inner)
	teid, inner, err = GTPDecap(t2)
	if err != nil || teid != e.PGWTEID {
		return nil, fmt.Errorf("transport: P-GW decap failed: %v", err)
	}
	return inner, nil
}

// PathLatencyUs is the total EPC processing delay.
func (e *EPCPath) PathLatencyUs() float64 { return 2 * e.HopDelayUs }
