package transport

import (
	"fmt"
	"math"
	"math/rand"
)

// NewGeneratorRand builds a packet generator driven by an explicit
// *rand.Rand, so callers that run many generators concurrently can give
// each its own (race-free, reproducible) randomness stream.
func NewGeneratorRand(p Proto, rng *rand.Rand) *Generator {
	return &Generator{Proto: p, rng: rng}
}

// ArrivalProcess produces per-TTI arrival counts for one traffic
// source. Implementations are deterministic functions of the *rand.Rand
// they were constructed with, so two processes seeded identically
// replay the same arrival pattern.
type ArrivalProcess interface {
	// Next returns how many transport blocks arrive in the coming TTI.
	Next() int
	// Name labels the process in reports.
	Name() string
}

// PoissonProcess models independent per-TTI arrivals with the given
// mean (the classic M/D/c ingress of a cell under uniform load).
type PoissonProcess struct {
	Mean float64
	rng  *rand.Rand
}

// NewPoissonProcess builds a Poisson arrival process. rng must not be
// shared with another goroutine.
func NewPoissonProcess(mean float64, rng *rand.Rand) *PoissonProcess {
	return &PoissonProcess{Mean: mean, rng: rng}
}

// Name implements ArrivalProcess.
func (p *PoissonProcess) Name() string { return fmt.Sprintf("poisson(%.2f)", p.Mean) }

// Next draws one Poisson variate (Knuth's product method; the per-TTI
// means in play are small, so the loop is short).
func (p *PoissonProcess) Next() int {
	if p.Mean <= 0 {
		return 0
	}
	l := math.Exp(-p.Mean)
	k, prod := 0, 1.0
	for {
		prod *= p.rng.Float64()
		if prod <= l {
			return k
		}
		k++
	}
}

// BurstyProcess is a two-state Markov-modulated Poisson process: an ON
// state emitting at BurstMean and an OFF state emitting at IdleMean,
// with geometric dwell times. It models the flash crowds and DRX-style
// silences that make deadline queues interesting — the long-run mean is
// the dwell-weighted blend of the two rates.
type BurstyProcess struct {
	// BurstMean and IdleMean are the per-TTI arrival means in each state.
	BurstMean, IdleMean float64
	// BurstTTIs and IdleTTIs are the mean dwell times (geometric).
	BurstTTIs, IdleTTIs float64

	rng    *rand.Rand
	inner  *PoissonProcess
	onAir  bool
	remain int
}

// NewBurstyProcess builds a bursty arrival process starting in the OFF
// state. rng must not be shared with another goroutine.
func NewBurstyProcess(burstMean, idleMean, burstTTIs, idleTTIs float64, rng *rand.Rand) *BurstyProcess {
	return &BurstyProcess{
		BurstMean: burstMean, IdleMean: idleMean,
		BurstTTIs: burstTTIs, IdleTTIs: idleTTIs,
		rng:   rng,
		inner: NewPoissonProcess(idleMean, rng),
	}
}

// Name implements ArrivalProcess.
func (b *BurstyProcess) Name() string {
	return fmt.Sprintf("bursty(on=%.2f/%.0f off=%.2f/%.0f)", b.BurstMean, b.BurstTTIs, b.IdleMean, b.IdleTTIs)
}

// Next advances the state machine one TTI and draws the state's rate.
func (b *BurstyProcess) Next() int {
	if b.remain <= 0 {
		b.onAir = !b.onAir
		mean, dwell := b.IdleMean, b.IdleTTIs
		if b.onAir {
			mean, dwell = b.BurstMean, b.BurstTTIs
		}
		b.inner.Mean = mean
		b.remain = geometricDwell(dwell, b.rng)
	}
	b.remain--
	return b.inner.Next()
}

// On reports whether the process is currently in its ON (burst) dwell —
// the ground truth a burst estimator's state is judged against.
func (b *BurstyProcess) On() bool { return b.onAir }

// MeanRate returns the long-run per-TTI arrival mean of the process.
func (b *BurstyProcess) MeanRate() float64 {
	tot := b.BurstTTIs + b.IdleTTIs
	if tot <= 0 {
		return 0
	}
	return (b.BurstMean*b.BurstTTIs + b.IdleMean*b.IdleTTIs) / tot
}

// geometricDwell samples a >=1 dwell time with the given mean.
func geometricDwell(mean float64, rng *rand.Rand) int {
	if mean <= 1 {
		return 1
	}
	// Geometric with success probability 1/mean.
	p := 1 / mean
	n := 1
	for rng.Float64() > p {
		n++
	}
	return n
}
