package transport

import (
	"bytes"
	"testing"
)

// FuzzParse hardens the packet parser: arbitrary bytes must never panic,
// and any packet Parse accepts must survive a marshal/parse round trip
// with identical decoded fields (byte-level identity is not required:
// the parser tolerates header fields Marshal normalizes, e.g. TCP
// window/flags).
func FuzzParse(f *testing.F) {
	g := NewGenerator(UDP, 1)
	for _, size := range []int{28, 64, 256} {
		b, _ := g.Next(size)
		f.Add(b)
	}
	gt := NewGenerator(TCP, 2)
	b, _ := gt.Next(128)
	f.Add(b)
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		p2, err := Parse(p.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshaled packet failed: %v", err)
		}
		if p2.Proto != p.Proto || p2.SrcIP != p.SrcIP || p2.DstIP != p.DstIP ||
			p2.SrcPort != p.SrcPort || p2.DstPort != p.DstPort || p2.Seq != p.Seq ||
			!bytes.Equal(p2.Payload, p.Payload) {
			t.Fatal("decoded fields changed across a marshal/parse round trip")
		}
	})
}

// FuzzGTPDecap: arbitrary bytes must never panic; accepted tunnels
// round-trip.
func FuzzGTPDecap(f *testing.F) {
	f.Add(GTPEncap(7, []byte("payload")))
	f.Add([]byte{0x30, 0xff, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		teid, inner, err := GTPDecap(data)
		if err != nil {
			return
		}
		if !bytes.Equal(GTPEncap(teid, inner), data) {
			t.Fatal("accepted GTP packet does not round-trip")
		}
	})
}
