// Package vransim reproduces "Enabling Efficient SIMD Acceleration for
// Virtual Radio Access Network" (Wang & Hu, ICPP 2021) as a pure-Go
// simulation: a functional SIMD ISA emulator and a cycle-level
// execution-port model of a Skylake-class core host a from-scratch
// LTE-shaped vRAN software pipeline, over which the paper's Arithmetic
// Ports Consciousness Mechanism (APCM) for the turbo decoder's data
// arrangement process is implemented, characterized and compared against
// the original extract-based mechanism.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for the paper-vs-measured record.
// The library lives under internal/; the runnable surfaces are
// cmd/vranbench, cmd/vranpipe and the examples/ directory, and the
// root-level benchmarks (bench_test.go) regenerate each table and figure
// via `go test -bench`.
package vransim
