// cell runs a small multi-UE uplink cell: three users with stochastic
// traffic, a round-robin scheduler, and an eNB core pool whose
// per-packet cost is calibrated from a full traced pipeline run — once
// with the original arrangement mechanism and once with APCM, showing
// how the kernel-level optimization propagates to cell-level latency and
// goodput.
package main

import (
	"fmt"
	"log"

	"vransim/internal/core"
	"vransim/internal/pipeline"
	"vransim/internal/simd"
	"vransim/internal/transport"
)

func main() {
	base := pipeline.CellConfig{
		UEs: 3, TTIs: 1000, TTIUs: 1000,
		PacketBytes: 512, Proto: transport.UDP,
		ArrivalPerTTI: 0.3,
		W:             simd.W128,
		Cores:         1, Seed: 4,
	}
	fmt.Printf("cell: %d UEs, %d TTIs, %dB packets, arrival p=%.1f/TTI, %d core(s)\n\n",
		base.UEs, base.TTIs, base.PacketBytes, base.ArrivalPerTTI, base.Cores)
	for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
		cfg := base
		cfg.Strategy = s
		res, err := pipeline.RunCell(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s per-packet %.1f µs | scheduled %d, dropped %d | latency mean %.1f µs, p99 %.1f µs | goodput %.2f Mbps | per-UE %v\n",
			core.ByStrategy(s).Name(), res.PerPacketUs, res.Scheduled, res.Dropped,
			res.MeanLatencyUs, res.P99LatencyUs, res.GoodputMbps, res.PerUE)
	}
}
