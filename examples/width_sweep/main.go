// width_sweep recompiles (conceptually) the decoder for SSE128, AVX256
// and AVX512 and shows the paper's central asymmetry: the original
// extract-based arrangement gets *slower* as registers widen, while
// APCM speeds up proportionally — so the arrangement share of decoding
// either balloons or vanishes (Figures 9 and 14).
package main

import (
	"fmt"
	"log"

	"vransim/internal/bench"
	"vransim/internal/core"
	"vransim/internal/simd"
)

func main() {
	const k = 1024 // turbo block size
	fmt.Printf("decode one K=%d block, 1 iteration, per register width\n\n", k)
	fmt.Printf("%-8s %-10s %14s %14s %10s\n", "width", "mechanism", "arrangement µs", "calculation µs", "arr share")
	for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
		for _, w := range simd.Widths {
			ph, err := bench.DecodePhases(s, w, k, 1)
			if err != nil {
				log.Fatal(err)
			}
			arr := ph.Us("arrangement")
			calc := ph.Us("gamma") + ph.Us("alpha") + ph.Us("beta+ext") + ph.Us("ext")
			fmt.Printf("%-8s %-10s %14.1f %14.1f %9.1f%%\n",
				w, core.ByStrategy(s).Name(), arr, calc, 100*arr/(arr+calc))
		}
		fmt.Println()
	}
}
