// uplink_e2e pushes one UDP packet through the complete uplink — UE
// transmitter, AWGN radio channel, the traced eNB receive pipeline
// (OFDM, demodulation, descrambling, DCI, rate de-matching, data
// arrangement, SIMD turbo decoding, L2, GTP) — under both arrangement
// mechanisms and prints the per-stage cost and the end-to-end latency
// delta (the per-packet view behind the paper's Figure 13).
package main

import (
	"fmt"
	"log"

	"vransim/internal/core"
	"vransim/internal/pipeline"
	"vransim/internal/simd"
	"vransim/internal/transport"
)

func main() {
	const packet = 512
	var total [2]float64
	for i, strat := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
		cfg := pipeline.DefaultConfig(simd.W128, strat, transport.UDP, packet)
		res, err := pipeline.RunUplink(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s mechanism ===\n", core.ByStrategy(strat).Name())
		fmt.Printf("TB %d bytes, %d code block(s); CRC ok %v, payload intact %v\n",
			res.TBBytes, res.CodeBlocks, res.CRCOK, res.PayloadOK)
		fmt.Printf("%-13s %9s %8s %6s\n", "stage", "cycles", "µs", "IPC")
		for _, st := range res.Stages {
			fmt.Printf("%-13s %9d %8.2f %6.2f\n", st.Name, st.Cycles, st.Us, st.IPC)
		}
		fmt.Printf("total (incl. EPC): %.2f µs\n\n", res.TotalUs)
		total[i] = res.TotalUs
	}
	fmt.Printf("APCM end-to-end packet latency reduction: %.1f%%\n",
		100*(1-total[1]/total[0]))
}
