// port_analysis visualizes the paper's core observation: during the
// original data arrangement the store ports (6-7) saturate while the
// vector ALU ports (0-2) sit idle; APCM moves the re-organization work
// onto those idle ports. It prints the per-port busy fractions of both
// mechanisms as bar charts.
package main

import (
	"fmt"
	"strings"

	"vransim/internal/bench"
	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/trace"
	"vransim/internal/uarch"
)

func main() {
	const n = 4096
	cfg := uarch.SkylakeServer()
	roles := map[int]string{
		0: "vALU/sALU", 1: "vALU/sALU", 2: "vALU/sALU", 3: "sALU",
		4: "load", 5: "load", 6: "store", 7: "store",
	}
	for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
		insts := bench.ArrangeWorkload(s, simd.W128, n)
		r := bench.SimKernel(insts, uarch.WimpyPlatform())
		fmt.Printf("=== %s: IPC %.2f, %s ===\n", core.ByStrategy(s).Name(), r.IPC(), r.TopDown)
		for p := 0; p < uarch.NumPorts; p++ {
			u := r.PortUtilization(p)
			bar := strings.Repeat("#", int(u*40+0.5))
			fmt.Printf("  port %d [%-9s] %5.1f%% %s\n", p, roles[p], 100*u, bar)
		}
		m := trace.MixOf(insts)
		fmt.Printf("  instruction mix: %s\n\n", m)
	}
	_ = cfg
}
