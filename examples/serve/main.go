// serve demonstrates the concurrent serving runtime at its central
// trade-off: the lane-fill batch window. A wide register only pays when
// its lane groups are full, but waiting for co-travelers costs latency —
// this example serves the same Poisson load with three windows and shows
// lane occupancy and p99 latency moving in opposite directions.
//
// Each run mounts the telemetry admin endpoint on a loopback port and
// reads its own /snapshot over HTTP — the per-stage numbers printed
// below are exactly what an external scraper would see.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"time"

	"vransim/internal/cliutil"
	"vransim/internal/core"
	"vransim/internal/ran"
	"vransim/internal/telemetry"
)

// snapshot mirrors the wire shape of the admin /snapshot endpoint.
type snapshot struct {
	Snapshot struct {
		Delivered uint64
		Batches   uint64
	} `json:"snapshot"`
	Stages []telemetry.StageSummary `json:"stages"`
}

func main() {
	width := flag.Int("width", 512, cliutil.WidthHelp)
	mech := flag.String("mech", "apcm", cliutil.MechHelp)
	flag.Parse()
	w, err := cliutil.ParseWidth(*width)
	if err != nil {
		log.Fatal(err)
	}
	s, err := cliutil.ParseStrategy(*mech)
	if err != nil {
		log.Fatal(err)
	}
	if s != core.StrategyAPCM {
		fmt.Printf("note: serving built with %q arrangement\n", *mech)
	}

	pool, err := ran.NewWordPool(40, 64, 24, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 cells, 2 workers, %v, K=%d, poisson 0.15 blocks/cell/TTI, 600 TTIs\n", w, pool.K)
	fmt.Println("per-window stage dwell read from the live admin /snapshot endpoint:")
	fmt.Println()
	fmt.Printf("%-12s %10s %10s %10s %14s %14s %14s\n",
		"window", "delivered", "dropped", "lanes", "p99 queue", "p99 batch", "p99 decode")
	for _, window := range []time.Duration{100 * time.Microsecond, time.Millisecond, 4 * time.Millisecond} {
		cfg := ran.DefaultConfig(w, s)
		cfg.Cells = 3
		cfg.Workers = 2
		cfg.Deadline = 20 * time.Millisecond
		cfg.BatchWindow = window
		cfg.Tracer = telemetry.NewTracer(256, 8)
		rt, err := ran.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		admin := ran.MountAdmin(rt, cfg.Tracer, nil, "127.0.0.1:0", ran.HealthPolicy{})
		if err := admin.Start(); err != nil {
			log.Fatal(err)
		}
		load := ran.LoadConfig{
			UEsPerCell: 4, TTI: time.Millisecond,
			MeanPerTTI: 0.15, TTIs: 600, Seed: 9,
		}
		done := make(chan struct{})
		go func() { ran.OfferLoad(rt, pool, load, true); close(done) }()

		// Poll the endpoint while traffic flows, keeping the last scrape.
		var last snapshot
		tick := time.NewTicker(50 * time.Millisecond)
	poll:
		for {
			select {
			case <-done:
				break poll
			case <-tick.C:
				if s, err := scrape(admin.URL() + "/snapshot"); err == nil {
					last = s
				}
			}
		}
		tick.Stop()
		snap := rt.Stop()
		// One final scrape after the drain so the stage summaries cover
		// every delivered block.
		if s, err := scrape(admin.URL() + "/snapshot"); err == nil {
			last = s
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		admin.Shutdown(ctx)
		cancel()

		var p99Queue, p99Batch, p99Decode time.Duration
		for _, st := range last.Stages {
			switch st.Stage {
			case telemetry.StageQueue:
				p99Queue = st.P99
			case telemetry.StageBatch:
				p99Batch = st.P99
			case telemetry.StageDecode:
				p99Decode = st.P99
			}
		}
		fmt.Printf("%-12v %10d %10d %9.0f%% %14v %14v %14v\n",
			window, snap.Delivered, snap.Dropped(), snap.LaneOccupancy*100,
			p99Queue.Round(10*time.Microsecond), p99Batch.Round(10*time.Microsecond),
			p99Decode.Round(time.Microsecond))
	}
	fmt.Println("\nthe stage attribution pins the cost of lane-filling where it accrues:")
	fmt.Println("longer windows grow the batch-stage dwell (waiting for co-travelers)")
	fmt.Println("while queue-wait and per-block decode time stay flat — the latency")
	fmt.Println("price of occupancy is paid in the batcher, not the decoder.")
}

// scrape fetches and decodes one /snapshot from the admin endpoint.
func scrape(url string) (snapshot, error) {
	var s snapshot
	resp, err := http.Get(url)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&s)
	return s, err
}
