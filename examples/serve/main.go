// serve demonstrates the concurrent serving runtime at its central
// trade-off: the lane-fill batch window. A wide register only pays when
// its lane groups are full, but waiting for co-travelers costs latency —
// this example serves the same Poisson load with three windows and shows
// lane occupancy and p99 latency moving in opposite directions.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"vransim/internal/cliutil"
	"vransim/internal/core"
	"vransim/internal/ran"
)

func main() {
	width := flag.Int("width", 512, cliutil.WidthHelp)
	mech := flag.String("mech", "apcm", cliutil.MechHelp)
	flag.Parse()
	w, err := cliutil.ParseWidth(*width)
	if err != nil {
		log.Fatal(err)
	}
	s, err := cliutil.ParseStrategy(*mech)
	if err != nil {
		log.Fatal(err)
	}
	if s != core.StrategyAPCM {
		fmt.Printf("note: serving built with %q arrangement\n", *mech)
	}

	pool, err := ran.NewWordPool(40, 64, 24, rand.New(rand.NewSource(3)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 cells, 2 workers, %v, K=%d, poisson 0.15 blocks/cell/TTI, 600 TTIs\n\n", w, pool.K)
	fmt.Printf("%-12s %10s %10s %10s %12s\n", "window", "delivered", "dropped", "lanes", "p99 latency")
	for _, window := range []time.Duration{100 * time.Microsecond, time.Millisecond, 4 * time.Millisecond} {
		cfg := ran.DefaultConfig(w, s)
		cfg.Cells = 3
		cfg.Workers = 2
		cfg.Deadline = 20 * time.Millisecond
		cfg.BatchWindow = window
		rt, err := ran.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		load := ran.LoadConfig{
			UEsPerCell: 4, TTI: time.Millisecond,
			MeanPerTTI: 0.15, TTIs: 600, Seed: 9,
		}
		ran.OfferLoad(rt, pool, load, true)
		snap := rt.Stop()
		fmt.Printf("%-12v %10d %10d %9.0f%% %12v\n",
			window, snap.Delivered, snap.Dropped(),
			snap.LaneOccupancy*100, snap.LatencyP99.Round(10*time.Microsecond))
	}
	fmt.Println("\nlonger windows fill more lanes (throughput) at the price of tail latency.")
}
