// chaos demonstrates the fault-injection subsystem and the HARQ
// retransmission path it exercises: the same Poisson load is served
// twice — once clean, once with a seeded injector forcing CRC failures
// and corrupting received words — and the recovery ledger shows how
// soft-combined retransmissions turn would-be losses back into
// deliveries. A third, saturating run trips the graceful-degradation
// ladder: under backlog pressure the workers clamp their turbo
// iteration budget before the admission path starts shedding load.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"vransim/internal/chaos"
	"vransim/internal/cliutil"
	"vransim/internal/core"
	"vransim/internal/ran"
	"vransim/internal/simd"
)

func main() {
	width := flag.Int("width", 512, cliutil.WidthHelp)
	mech := flag.String("mech", "apcm", cliutil.MechHelp)
	seed := flag.Int64("seed", 1, "traffic and chaos seed")
	flag.Parse()

	w, err := cliutil.ParseWidth(*width)
	if err != nil {
		log.Fatal(err)
	}
	s, err := cliutil.ParseStrategy(*mech)
	if err != nil {
		log.Fatal(err)
	}

	const k = 104
	pool, err := ran.NewWordPool(k, 128, 24, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== 1. clean baseline ===")
	run(w, s, pool, *seed, nil, 1.0, true)

	fmt.Println("\n=== 2. chaos: 10% forced CRC failures, 10% noisy receptions ===")
	inj := chaos.New(chaos.Config{
		Seed:        *seed,
		CRCRate:     0.10,
		CorruptRate: 0.10,
	})
	run(w, s, pool, *seed, inj, 1.0, true)
	fmt.Println("fault-site ledger (injected/trials):")
	for _, c := range inj.Counters() {
		if c.Trials > 0 {
			fmt.Printf("  %-8s %6d / %d\n", c.Site, c.Fires, c.Trials)
		}
	}

	fmt.Println("\n=== 3. overload: degradation ladder under saturating load ===")
	run(w, s, pool, *seed, nil, 16.0, false)
}

// run serves Poisson traffic through a fresh runtime (optionally under
// chaos injection) and prints the delivery/recovery ledger.
func run(w simd.Width, s core.Strategy, pool *ran.WordPool, seed int64, inj *chaos.Injector, rate float64, paced bool) {
	cfg := ran.DefaultConfig(w, s)
	// The emulated decoder is ~1000x a real one, so the per-block budget
	// is loose — the point here is the failure path, not the deadline.
	cfg.Deadline = 100 * time.Millisecond
	cfg.CheckCRC = pool.CheckCRC()
	cfg.Chaos = inj
	rt, err := ran.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	load := ran.LoadConfig{
		UEsPerCell: 8, TTI: time.Millisecond, MeanPerTTI: rate,
		TTIs: 400, Seed: seed,
	}
	rep := ran.OfferLoad(rt, pool, load, paced)
	snap := rt.Stop()

	fmt.Printf("offered %d, accepted %d, delivered %d (%.1f%%)\n",
		rep.Offered, snap.Accepted, snap.Delivered,
		100*float64(snap.Delivered)/float64(maxInt(1, rep.Offered)))
	fmt.Printf("drops by cause: ")
	for cause, n := range snap.DropsByCause() {
		if n > 0 {
			fmt.Printf("%s=%d ", cause, n)
		}
	}
	fmt.Println()
	if snap.CRCFailures > 0 {
		recovered := 100 * float64(snap.HARQRecovered) / float64(maxU64(1, snap.HARQRetries))
		fmt.Printf("HARQ: %d CRC failures -> %d retries, %d recovered by soft combining (%.0f%% of retries)\n",
			snap.CRCFailures, snap.HARQRetries, snap.HARQRecovered, recovered)
		fmt.Printf("      %d combines, %d buffer evictions, %d live buffers at stop\n",
			snap.HARQCombines, snap.HARQEvictions, snap.HARQBuffers)
	}
	if snap.DegradedBatches > 0 {
		fmt.Printf("degradation: %d of %d batches decoded under a clamped iteration budget (final level %d)\n",
			snap.DegradedBatches, snap.Batches, snap.DegradeLevel)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
