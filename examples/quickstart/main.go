// Quickstart: run the data arrangement process both ways — the original
// extract-based mechanism and APCM — over the same interleaved LLR
// stream, verify they produce identical segregated arrays, and compare
// their simulated microarchitectural behaviour on the paper's port
// model.
package main

import (
	"fmt"

	"vransim/internal/cache"
	"vransim/internal/core"
	"vransim/internal/simd"
	"vransim/internal/trace"
	"vransim/internal/uarch"
)

func main() {
	const n = 1024 // LLR triples
	width := simd.W128

	// Build the interleaved [S1 YP1 YP2 ...] input stream in emulated
	// memory, as rate de-matching leaves it.
	mem := simd.NewMemory(1 << 20)
	src := mem.Alloc(core.InterleavedBytes(n), 64)
	s := make([]int16, n)
	p1 := make([]int16, n)
	p2 := make([]int16, n)
	for i := 0; i < n; i++ {
		s[i], p1[i], p2[i] = int16(3*i), int16(3*i+1), int16(3*i+2)
	}
	core.WriteInterleaved(mem, src, s, p1, p2)

	fmt.Printf("arranging %d triples at %s on the Skylake port model\n\n", n, width)
	results := map[core.Strategy][]int16{}
	for _, strat := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
		ar := core.ByStrategy(strat)
		lay := ar.Layout(width)
		e := simd.NewEngine(width, mem, trace.NewRecorder(n*8))
		dst := core.Dest{
			S:  mem.Alloc(lay.DstBytes(n), 64),
			P1: mem.Alloc(lay.DstBytes(n), 64),
			P2: mem.Alloc(lay.DstBytes(n), 64),
		}
		ar.Arrange(e, src, dst, n)

		// Functional result, read back in natural order.
		results[strat] = lay.ReadNatural(mem, dst.P1, core.ClusterP1, n)

		// Timing on the simulated core.
		sim := uarch.NewSimulator(uarch.SkylakeServer(), cache.NewHierarchy(cache.WimpyNode))
		sim.Run(e.Recorder().Insts()) // warm caches
		r := sim.Run(e.Recorder().Insts())
		fmt.Printf("%-10s %6d µops  %6d cycles  IPC %.2f  store BW %5.1f bits/cycle\n",
			ar.Name(), r.Insts, r.Cycles, r.IPC(), r.StoreBitsPerCycle())
		fmt.Printf("           top-down: %s\n\n", r.TopDown)
	}

	same := true
	for i := range results[core.StrategyExtract] {
		if results[core.StrategyExtract][i] != results[core.StrategyAPCM][i] {
			same = false
			break
		}
	}
	fmt.Printf("both mechanisms produced identical yparity1 arrays: %v\n", same)
}
