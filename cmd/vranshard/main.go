// Command vranshard runs one shard worker of a distributed vRAN
// deployment: a serving runtime (internal/ran) fronted by the fronthaul
// frame protocol, ready to be driven by a vrancoord coordinator over
// TCP.
//
// Usage:
//
//	vranshard -listen 127.0.0.1:7101 [-admin :9191]
//	          [-cells 3] [-workers 4] [-width 512] [-mech apcm]
//	          [-iters 4] [-deadline 10ms] [-window 500µs] [-queue 64]
//	          [-harq-retries 3] [-harq-procs 8]
//	          [-chaos] [-chaos-crc 0.05] [-chaos-corrupt 0.05] …
//
// The worker accepts any number of fronthaul connections on -listen and
// serves each until EOF; the coordinator conventionally opens two per
// shard (a lossy U-plane data link and a lock-step M-plane control
// link), but the worker treats every connection uniformly. -cells is
// the FLEET cell count — cell ids are global across shards, and the
// coordinator routes each cell to exactly one worker.
//
// Decode acceptance is the content CRC24B check (shard.ContentCRC24B):
// unlike vranserve's in-process truth table, a shard worker only ever
// sees the bits that crossed the wire. Blocks whose payload does not
// end in a valid CRC24B suffix route into the HARQ retry path.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"vransim/internal/chaos"
	"vransim/internal/cliutil"
	"vransim/internal/fronthaul"
	"vransim/internal/ran"
	"vransim/internal/shard"
	"vransim/internal/telemetry"
)

func main() {
	rf := cliutil.RegisterRuntime(flag.CommandLine)
	listen := flag.String("listen", "127.0.0.1:7101", "fronthaul listen address")
	admin := flag.String("admin", "", "admin HTTP listen address (e.g. :9191; empty disables)")
	seed := flag.Int64("seed", 1, "default chaos seed when -chaos-seed is 0")
	traceRing := flag.Int("trace-ring", 256, "local span ring size for the admin /spans view")
	cf := cliutil.RegisterChaos(flag.CommandLine)
	flag.Parse()

	cfg, err := rf.Config()
	if err != nil {
		fatal("%v", err)
	}
	cfg.CheckCRC = shard.ContentCRC24B()
	tr := telemetry.NewTracer(*traceRing, 0)
	cfg.Tracer = tr
	var inj *chaos.Injector
	if inj = cf.Injector(*seed); inj != nil {
		cfg.Chaos = inj
	}

	rt, err := ran.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	w := shard.NewWorker(rt)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("vranshard: serving %d fleet cells on %s (%d workers, %v/%s, queue %d)\n",
		cfg.Cells, ln.Addr(), cfg.Workers, cfg.Width, *rf.Mech, cfg.QueueDepth)

	if *admin != "" {
		srv := ran.MountAdmin(rt, tr, nil, *admin, ran.HealthPolicy{}, inj.Families)
		if err := srv.Start(); err != nil {
			fatal("admin endpoint: %v", err)
		}
		fmt.Printf("admin endpoint on %s\n", srv.Addr())
	}

	// Serve until signalled; each accepted connection gets its own
	// serve loop and the listener close unblocks Accept.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var wg sync.WaitGroup
	go func() {
		<-stop
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed
		}
		wg.Add(1)
		go func(conn net.Conn) {
			defer wg.Done()
			defer conn.Close()
			if err := w.ServeConn(fronthaul.NewLink(conn, nil)); err != nil {
				fmt.Fprintf(os.Stderr, "vranshard: conn %s: %v\n", conn.RemoteAddr(), err)
			}
		}(conn)
	}
	wg.Wait()
	s := rt.Stop()
	fmt.Printf("vranshard: stopped; accepted %d, delivered %d, dropped %d\n",
		s.Accepted, s.Delivered, s.Dropped())
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vranshard: "+format+"\n", args...)
	os.Exit(1)
}
