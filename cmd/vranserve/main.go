// Command vranserve runs the concurrent multi-cell serving runtime
// against synthetic traffic: per-cell Poisson (or bursty) arrivals of
// same-K code blocks, deadline-aware admission, lane-fill batching, and
// a decode worker pool — printing live stats while it runs and a final
// report cross-checked against the analytic TTI queueing model.
//
// Usage:
//
//	vranserve [-cells 3] [-ues 8] [-workers 4] [-width 512] [-mech apcm]
//	          [-k 104] [-iters 4] [-rate 2.0] [-burst] [-ttis 2000]
//	          [-tti 1ms] [-deadline 3ms] [-window 500µs] [-queue 64]
//	          [-saturate] [-stats 1s] [-seed 1] [-admin :9090] [-notrace]
//	          [-harq-retries 3] [-harq-procs 8]
//	          [-class urllc,embb] [-urllc-deadline 0] [-predict]
//	          [-chaos] [-chaos-seed 0] [-chaos-corrupt 0.05] [-chaos-crc 0.05]
//	          [-chaos-stall 0] [-chaos-queue 0] [-chaos-evict 0]
//	          [-chaos-compilefail 0]
//
// -chaos arms the seeded fault injector (internal/chaos) at the
// runtime's fault sites; decode failures route through the HARQ
// soft-combining retry path instead of dropping, visible as the
// vran_harq_* and vran_chaos_* metric families on /metrics.
//
// -class assigns SLA classes to cells (the list cycles: "urllc,embb"
// makes every other cell URLLC). With URLLC cells configured the
// runtime dispatches URLLC ahead of eMBB, sheds eMBB first under
// overload, and reports per-class ledgers (vran_class_* families).
// -predict arms the per-cell MMPP burst predictor so shedding starts
// when a burst begins rather than when the backlog crosses a
// threshold (vran_predict_* families).
//
// With -admin an HTTP endpoint exposes the runtime while it serves:
// /metrics (Prometheus text, ?format=json for JSON), /snapshot,
// /spans, /healthz, and /debug/pprof. Span tracing is on by default
// when the admin endpoint is mounted; -notrace disables it.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"vransim/internal/chaos"
	"vransim/internal/cliutil"
	"vransim/internal/pipeline"
	"vransim/internal/ran"
	"vransim/internal/telemetry"
	"vransim/internal/uarch"
)

func main() {
	rf := cliutil.RegisterRuntime(flag.CommandLine)
	ues := flag.Int("ues", 8, "UEs per cell")
	rate := flag.Float64("rate", 0.3, "mean code blocks per cell per TTI")
	burst := flag.Bool("burst", false, "bursty (on/off) arrivals instead of Poisson")
	ttis := flag.Int("ttis", 2000, "run horizon in TTIs")
	tti := flag.Duration("tti", time.Millisecond, "TTI length")
	saturate := flag.Bool("saturate", false, "submit without TTI pacing (saturating load)")
	stats := flag.Duration("stats", time.Second, "live stats interval (0 disables)")
	seed := flag.Int64("seed", 1, "traffic seed")
	admin := flag.String("admin", "", "admin HTTP listen address (e.g. :9090; empty disables)")
	notrace := flag.Bool("notrace", false, "disable span tracing even when -admin is set")
	cf := cliutil.RegisterChaos(flag.CommandLine)
	flag.Parse()

	cfg, err := rf.Config()
	if err != nil {
		fatal("%v", err)
	}
	k := rf.K

	var tracer *telemetry.Tracer
	if *admin != "" && !*notrace {
		tracer = telemetry.NewTracer(512, 16)
	}
	cfg.Tracer = tracer

	pool, err := ran.NewWordPool(*k, 128, 24, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal("%v", err)
	}
	// The pool's truth-compare hook is the closed-loop CRC stand-in: a
	// chaos-corrupted reception that decodes to the wrong payload routes
	// into the HARQ retry path instead of being delivered.
	cfg.CheckCRC = pool.CheckCRC()

	inj := cf.Injector(*seed)
	if inj != nil {
		cfg.Chaos = inj
	}

	rt, err := ran.New(cfg)
	if err != nil {
		fatal("%v", err)
	}

	var adminSrv *telemetry.AdminServer
	if *admin != "" {
		// One traced full-lane decode calibrates the uarch gauges; the
		// serving workers themselves run untraced.
		var cal *uarch.Result
		if c, err := ran.CalibrateUarch(cfg, *k); err == nil {
			cal = &c
		} else {
			fmt.Fprintf(os.Stderr, "vranserve: uarch calibration skipped: %v\n", err)
		}
		adminSrv = ran.MountAdmin(rt, tracer, cal, *admin, ran.HealthPolicy{}, inj.Families)
		if err := adminSrv.Start(); err != nil {
			fatal("admin endpoint: %v", err)
		}
		fmt.Printf("admin endpoint on %s (/metrics /snapshot /spans /healthz /debug/pprof)\n", adminSrv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			adminSrv.Shutdown(ctx)
		}()
	}

	fmt.Printf("vranserve: %d cells x %d UEs, %d workers, %v/%s, K=%d, %s arrivals at %.2f blocks/cell/TTI\n",
		cfg.Cells, *ues, cfg.Workers, cfg.Width, *rf.Mech, *k, arrivalName(*burst), *rate)
	fmt.Printf("deadline %v, batch window %v (%d lanes), queue depth %d, %d TTIs of %v\n",
		cfg.Deadline, cfg.BatchWindow, rt.Lanes(), cfg.QueueDepth, *ttis, *tti)
	fmt.Printf("HARQ: %d retries, %d processes/UE\n", cfg.HARQ.MaxRetries, cfg.HARQ.Processes)
	if len(cfg.SLA.Classes) > 0 {
		fmt.Printf("SLA classes:")
		for i, c := range cfg.SLA.Classes {
			fmt.Printf(" cell%d=%s", i, c)
		}
		if cfg.Predict.Enabled {
			fmt.Printf("; burst predictor armed (window %v)", cfg.Predict.Window)
		}
		fmt.Println()
	}
	if inj != nil {
		cs := *cf.Seed
		if cs == 0 {
			cs = *seed
		}
		fmt.Printf("chaos armed (seed %d): corrupt=%.2f crc=%.2f stall=%.2f queue=%.2f evict=%.2f compilefail=%.2f\n",
			cs, *cf.Corrupt, *cf.CRC, *cf.Stall, *cf.Queue, *cf.Evict, *cf.Compile)
	}
	fmt.Println()

	load := ran.LoadConfig{
		UEsPerCell: *ues, TTI: *tti, MeanPerTTI: *rate,
		Bursty: *burst, BurstFactor: 4, TTIs: *ttis, Seed: *seed,
	}
	done := make(chan *ran.LoadReport, 1)
	go func() { done <- ran.OfferLoad(rt, pool, load, !*saturate) }()

	var ticker *time.Ticker
	var tick <-chan time.Time
	if *stats > 0 {
		ticker = time.NewTicker(*stats)
		tick = ticker.C
		defer ticker.Stop()
	}
	var report *ran.LoadReport
	for report == nil {
		select {
		case report = <-done:
		case <-tick:
			live(rt.Snapshot())
		}
	}
	snap := rt.Stop()
	final(snap, report, cfg, pool.K, *tti, inj)
}

func arrivalName(burst bool) string {
	if burst {
		return "bursty"
	}
	return "poisson"
}

// live prints one in-flight stats line.
func live(s *ran.Snapshot) {
	depth := 0
	for _, c := range s.Cells {
		depth += c.QueueDepth
	}
	fmt.Printf("[%6.1fs] delivered %7d  dropped %6d  queue %4d  goodput %7.2f Mbps  lanes %4.0f%%  p99 %7s  util %3.0f%%\n",
		s.Elapsed.Seconds(), s.Delivered, s.Dropped(), depth, s.GoodputMbps,
		s.LaneOccupancy*100, s.LatencyP99.Round(10*time.Microsecond), s.WorkerUtilization*100)
}

// final prints the end-of-run report and the analytic cross-check.
func final(s *ran.Snapshot, rep *ran.LoadReport, cfg ran.Config, k int, tti time.Duration, inj *chaos.Injector) {
	fmt.Printf("\n===== final report (%.1fs) =====\n", s.Elapsed.Seconds())
	fmt.Printf("%-6s %10s %10s %10s %10s %10s\n", "cell", "accepted", "delivered", "dropped", "Mbps", "queue")
	for i, c := range s.Cells {
		fmt.Printf("%-6d %10d %10d %10d %10.2f %10d\n", i, c.Accepted, c.Delivered, c.Dropped(), c.Mbps, c.QueueDepth)
	}
	fmt.Printf("\noffered %d blocks, accepted %d, delivered %d (%.1f%% of offered)\n",
		rep.Offered, s.Accepted, s.Delivered, 100*float64(s.Delivered)/float64(max(1, rep.Offered)))
	fmt.Printf("drops by cause: ")
	for cause, n := range s.DropsByCause() {
		fmt.Printf("%s=%d ", cause, n)
	}
	fmt.Println()
	fmt.Printf("goodput %.2f Mbps, lane occupancy %.1f%% over %d batches, worker utilization %.0f%%\n",
		s.GoodputMbps, 100*s.LaneOccupancy, s.Batches, 100*s.WorkerUtilization)
	fmt.Printf("latency p50/p90/p99: %v / %v / %v; mean decode %.0f µs/block\n",
		s.LatencyP50.Round(10*time.Microsecond), s.LatencyP90.Round(10*time.Microsecond),
		s.LatencyP99.Round(10*time.Microsecond), s.AvgDecodeUs)
	if s.CRCFailures > 0 || s.HARQRetries > 0 {
		fmt.Printf("HARQ: %d CRC failures, %d retries, %d recovered by combining; %d combines, %d buffer evictions; %d degraded batches\n",
			s.CRCFailures, s.HARQRetries, s.HARQRecovered, s.HARQCombines, s.HARQEvictions, s.DegradedBatches)
	}
	if len(cfg.SLA.Classes) > 0 {
		fmt.Printf("\n%-6s %10s %10s %10s %10s %10s %10s\n", "class", "accepted", "delivered", "dropped", "shed", "p99", "p50")
		for c := ran.Class(0); c < ran.NumClasses; c++ {
			ks := s.Classes[c]
			fmt.Printf("%-6s %10d %10d %10d %10d %10v %10v\n", c, ks.Accepted, ks.Delivered, ks.Dropped(),
				ks.Drops[ran.DropShed], ks.LatencyP99.Round(10*time.Microsecond), ks.LatencyP50.Round(10*time.Microsecond))
		}
		fmt.Printf("worker steals %d, final shed level %d\n", s.Steals, s.ShedLevel)
		for _, p := range s.Predict {
			state := "off"
			if p.Burst {
				state = "ON"
			}
			fmt.Printf("predict cell %d: state %s, rate %.0f/s (on %.0f, off %.0f), %d transitions over %d windows\n",
				p.Cell, state, p.Rate, p.RateOn, p.RateOff, p.Transitions, p.Windows)
		}
	}
	if inj != nil {
		fmt.Printf("chaos: ")
		for _, c := range inj.Counters() {
			fmt.Printf("%s=%d/%d ", c.Site, c.Fires, c.Trials)
		}
		fmt.Println("(injected/trials)")
	}

	// Cross-check against the analytic earliest-free-core model fed with
	// the measured per-block decode cost and the actual arrival pattern.
	if s.DecodedBlocks == 0 {
		return
	}
	model := pipeline.TTIConfig{
		TTIUs:      ttiUs(tti),
		ProcUs:     s.AvgDecodeUs,
		TBBits:     k,
		DeadlineUs: float64(cfg.Deadline.Microseconds()),
		Cores:      cfg.Workers,
	}
	delivered, mbps := model.SimulateArrivals(rep.Arrivals)
	measured := float64(s.Delivered) / float64(max(1, rep.Offered))
	fmt.Printf("\nanalytic cross-check (pipeline.TTIConfig, measured %.0f µs/block, %d cores):\n", s.AvgDecodeUs, cfg.Workers)
	fmt.Printf("  delivery: measured %.1f%%  vs model %.1f%%\n", 100*measured, 100*delivered)
	fmt.Printf("  goodput:  measured %.2f Mbps vs model %.2f Mbps\n", s.GoodputMbps, mbps)
	fmt.Println("  (the model has no batching, admission or queue bound; gaps show what the runtime adds)")
}

func ttiUs(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vranserve: "+format+"\n", args...)
	os.Exit(1)
}
