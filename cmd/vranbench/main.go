// Command vranbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	vranbench -list
//	vranbench [-quick] all
//	vranbench [-quick] fig13 fig14 …
//	vranbench [-quick] -decodejson BENCH_decode.json
//	vranbench [-quick] -shardjson BENCH_shard.json
//	vranbench [-quick] -tracejson BENCH_trace.json [-tracegate 5]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"vransim/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	list := flag.Bool("list", false, "list available experiments")
	decodeJSON := flag.String("decodejson", "", "write the steady-state decode benchmark report to this file and exit")
	shardJSON := flag.String("shardjson", "", "write the 1-vs-2-shard fleet benchmark report to this file and exit")
	traceJSON := flag.String("tracejson", "", "write the distributed-tracing overhead report to this file and exit")
	traceGate := flag.Float64("tracegate", 0, "fail if -tracejson measures trace overhead above this percent (0 disables)")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *decodeJSON != "" {
		writeReport(*decodeJSON, *quick, bench.WriteDecodeBenchJSON)
		return
	}
	if *shardJSON != "" {
		writeReport(*shardJSON, *quick, bench.WriteShardBenchJSON)
		return
	}
	if *traceJSON != "" {
		gate := *traceGate
		writeReport(*traceJSON, *quick, func(w io.Writer, quick bool) error {
			return bench.WriteTraceBenchJSON(w, quick, gate)
		})
		return
	}
	runExperiments(flag.Args(), *quick)
}

// writeReport streams one machine-readable benchmark report to path.
func writeReport(path string, quick bool, write func(w io.Writer, quick bool) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vranbench:", err)
		os.Exit(1)
	}
	if err := write(f, quick); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "vranbench:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "vranbench:", err)
		os.Exit(1)
	}
}

func runExperiments(args []string, quick bool) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: vranbench [-quick] all | <experiment-id>... (see -list)")
		os.Exit(2)
	}
	opts := bench.Options{Quick: quick}
	for _, id := range args {
		if id == "all" {
			if err := bench.RunAll(os.Stdout, opts); err != nil {
				fmt.Fprintln(os.Stderr, "vranbench:", err)
				os.Exit(1)
			}
			continue
		}
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "vranbench: unknown experiment %q (see -list)\n", id)
			os.Exit(2)
		}
		if err := bench.RunOne(os.Stdout, e, opts); err != nil {
			fmt.Fprintln(os.Stderr, "vranbench:", err)
			os.Exit(1)
		}
	}
}
