// Command vranbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	vranbench -list
//	vranbench [-quick] all
//	vranbench [-quick] fig13 fig14 …
package main

import (
	"flag"
	"fmt"
	"os"

	"vransim/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: vranbench [-quick] all | <experiment-id>... (see -list)")
		os.Exit(2)
	}
	opts := bench.Options{Quick: *quick}
	for _, id := range args {
		if id == "all" {
			if err := bench.RunAll(os.Stdout, opts); err != nil {
				fmt.Fprintln(os.Stderr, "vranbench:", err)
				os.Exit(1)
			}
			continue
		}
		e, ok := bench.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "vranbench: unknown experiment %q (see -list)\n", id)
			os.Exit(2)
		}
		if err := bench.RunOne(os.Stdout, e, opts); err != nil {
			fmt.Fprintln(os.Stderr, "vranbench:", err)
			os.Exit(1)
		}
	}
}
