// Command vrantune is the offline auto-tuner for the decode compiler's
// scheduling pass: it records, compiles and schedule-searches replay
// programs over a (width × mechanism × K × packing) grid, verifies
// every tuned plan bit-for-bit against the interpreter, and persists
// the winners to a versioned plan cache that vranserve (or any
// BatchDecoder user) warm-starts from — a restarted process skips both
// the recording compile and the schedule search.
//
// Usage:
//
//	vrantune -ks 104,512 -widths 512 -mechs apcm -packed packed
//	vrantune -ks 104,512 -bench -gate-ipc-frac 0.8 -gate-speedup 0.95
//
// The search is deterministic: the same -seed and -budget reproduce
// the same cache byte for byte. Cache files are keyed by a hash of the
// full configuration (and both on-disk format versions), so a stale
// cache is never silently reused.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vransim/internal/cliutil"
	"vransim/internal/simd/program"
	"vransim/internal/tune"
	"vransim/internal/turbo"
)

func main() {
	var (
		cacheDir  = flag.String("cache", tune.DefaultDir(), "plan cache directory")
		widths    = flag.String("widths", "512", "comma-separated SIMD widths to tune (128,256,512)")
		mechs     = flag.String("mechs", "apcm", "comma-separated arrangement mechanisms (see vranpipe -mech)")
		ks        = flag.String("ks", "40,104,208,512", "comma-separated block sizes")
		packed    = flag.String("packed", "packed", "decode paths to tune: packed, block or both")
		iters     = flag.Int("iters", turbo.DefaultMaxIters, "decode iteration budget during recording")
		mem       = flag.Int("mem", 32<<20, "decoder arena bytes (warm-start requires the same value)")
		seed      = flag.Int64("seed", 1, "search seed (same seed -> byte-identical cache)")
		budget    = flag.Int("budget", 0, "max schedule heuristics tried per plan (0 = all)")
		simBudget = flag.Int("simbudget", 0, "max simulated uops per candidate segment (0 = default)")
		force     = flag.Bool("force", false, "retune even when a matching cache file exists")
		bench     = flag.Bool("bench", false, "wall-clock scheduled vs unscheduled replay per plan")
		reps      = flag.Int("reps", 8, "timed decodes per plan for -bench")
		gateIPC   = flag.Float64("gate-ipc-frac", 0, "fail unless this fraction of plans strictly improved simulated IPC (0 disables)")
		gateSpeed = flag.Float64("gate-speedup", 0, "with -bench: fail if any plan's scheduled/unscheduled speedup falls below this (0 disables)")
	)
	flag.Parse()

	kGrid, err := parseInts(*ks)
	if err != nil {
		fatal(err)
	}
	packGrid, err := parsePacked(*packed)
	if err != nil {
		fatal(err)
	}

	var (
		improved, plans int
		minSpeedup      = 1e9
		benchFailed     bool
	)
	for _, wbits := range splitList(*widths) {
		bits, err := strconv.Atoi(wbits)
		if err != nil {
			fatal(fmt.Errorf("bad width %q", wbits))
		}
		w, err := cliutil.ParseWidth(bits)
		if err != nil {
			fatal(err)
		}
		for _, mech := range splitList(*mechs) {
			s, err := cliutil.ParseStrategy(mech)
			if err != nil {
				fatal(err)
			}
			o := tune.Options{
				Width: w, Strategy: s, MemBytes: *mem,
				Ks: kGrid, Packed: packGrid,
				MaxIters: *iters, Seed: *seed, Budget: *budget, SimBudget: *simBudget,
			}
			path := tune.CachePath(*cacheDir, &o)
			var c *tune.Cache
			if !*force {
				if loaded, err := tune.Load(path); err == nil {
					c = loaded
					fmt.Printf("# %s %s: cache hit %s (%d plans)\n", w, s, path, len(c.Plans))
				}
			}
			if c == nil {
				start := time.Now()
				c, err = tune.Tune(o)
				if err != nil {
					fatal(err)
				}
				if err := tune.Save(path, c); err != nil {
					fatal(err)
				}
				fmt.Printf("# %s %s: tuned %d plans in %v -> %s\n", w, s, len(c.Plans), time.Since(start).Round(time.Millisecond), path)
			}
			report(w.String(), s.String(), c, *bench, *reps, &improved, &plans, &minSpeedup, &benchFailed, *gateSpeed)
		}
	}

	if *gateIPC > 0 {
		frac := 0.0
		if plans > 0 {
			frac = float64(improved) / float64(plans)
		}
		if frac < *gateIPC {
			fmt.Fprintf(os.Stderr, "vrantune: gate failed: simulated IPC strictly improved on %d/%d plans (%.0f%%), need %.0f%%\n",
				improved, plans, 100*frac, 100**gateIPC)
			os.Exit(1)
		}
		fmt.Printf("# gate ok: simulated IPC strictly improved on %d/%d plans\n", improved, plans)
	}
	if benchFailed {
		os.Exit(1)
	}
}

// report prints one cache's per-plan rows: the winning heuristic per
// segment, the cost-model IPC movement, and the search cost (candidate
// orderings priced and µops simulated — the deterministic budget the
// ISSUE's satellite asks the report to carry). With bench enabled it
// appends wall-clock scheduled vs unscheduled timings.
func report(width, mech string, c *tune.Cache, bench bool, reps int, improved, plans *int, minSpeedup *float64, benchFailed *bool, gateSpeed float64) {
	fmt.Printf("%-5s %-12s %-6s %-6s %-18s %-26s %-26s %8s %6s %12s",
		"width", "mech", "k", "packed", "heur[first,steady]", "ipc_first", "ipc_steady", "moved", "cands", "sim_uops")
	if bench {
		fmt.Printf(" %12s %12s %8s", "sched_ns", "unsched_ns", "speedup")
	}
	fmt.Println()
	for i := range c.Plans {
		p := &c.Plans[i]
		*plans++
		if p.SimIPCAfter[program.SegFirst] > p.SimIPCBefore[program.SegFirst] ||
			p.SimIPCAfter[program.SegSteady] > p.SimIPCBefore[program.SegSteady] {
			*improved++
		}
		fmt.Printf("%-5s %-12s %-6d %-6v %-18s %-26s %-26s %8d %6d %12d",
			width, mech, p.K, p.Packed,
			p.Heuristic[program.SegFirst]+","+p.Heuristic[program.SegSteady],
			ipcCol(p, program.SegFirst), ipcCol(p, program.SegSteady),
			p.Moved[program.SegFirst]+p.Moved[program.SegSteady],
			p.Candidates, p.SimulatedUops)
		if bench {
			schedNs, unschedNs, err := benchPlan(c, p, reps)
			if err != nil {
				fatal(err)
			}
			speedup := float64(unschedNs) / float64(schedNs)
			if speedup < *minSpeedup {
				*minSpeedup = speedup
			}
			fmt.Printf(" %12d %12d %7.3fx", schedNs, unschedNs, speedup)
			if gateSpeed > 0 && speedup < gateSpeed {
				fmt.Fprintf(os.Stderr, "\nvrantune: gate failed: K=%d packed=%v scheduled/unscheduled speedup %.3f < %.3f\n",
					p.K, p.Packed, speedup, gateSpeed)
				*benchFailed = true
			}
		}
		fmt.Println()
	}
}

func ipcCol(p *tune.Plan, seg int) string {
	return fmt.Sprintf("%.4f->%.4f", p.SimIPCBefore[seg], p.SimIPCAfter[seg])
}

// benchPlan times one plan's scheduled replay (warm-started from the
// cache) against an unscheduled in-process compile of the same plan,
// reporting ns per Decode call. Wall-clock numbers are advisory — the
// deterministic signal is the simulated IPC — but a scheduled order
// must not cost real time, which the -gate-speedup gate enforces.
func benchPlan(c *tune.Cache, p *tune.Plan, reps int) (schedNs, unschedNs int64, err error) {
	run := func(bd *turbo.BatchDecoder, words []*turbo.LLRWord) (int64, error) {
		if _, _, err := bd.Decode(p.K, words); err != nil { // warm the plan
			return 0, err
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, _, err := bd.Decode(p.K, words); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Nanoseconds() / int64(reps), nil
	}

	sched, err := decoderFor(c, p.Packed)
	if err != nil {
		return 0, 0, err
	}
	if _, err := tune.WarmStart(sched, c); err != nil {
		return 0, 0, err
	}
	words := benchWords(c, p)
	if schedNs, err = run(sched, words); err != nil {
		return 0, 0, err
	}

	unsched, err := decoderFor(c, p.Packed)
	if err != nil {
		return 0, 0, err
	}
	if unschedNs, err = run(unsched, words); err != nil {
		return 0, 0, err
	}
	return schedNs, unschedNs, nil
}

func decoderFor(c *tune.Cache, packed bool) (*turbo.BatchDecoder, error) {
	w, err := cliutil.ParseWidth(c.WidthBits)
	if err != nil {
		return nil, err
	}
	s, err := cliutil.ParseStrategy(c.Strategy)
	if err != nil {
		return nil, err
	}
	bd := turbo.NewBatchDecoder(w, s, c.MemBytes)
	bd.MaxIters = c.MaxIters
	bd.Packed = packed
	return bd, nil
}

func benchWords(c *tune.Cache, p *tune.Plan) []*turbo.LLRWord {
	words := make([]*turbo.LLRWord, 0)
	w := turbo.NewLLRWord(p.K)
	// Noise-free zero LLRs would converge instantly; a fixed ramp keeps
	// the decode iterating like real traffic without randomness.
	for i := 0; i < p.K; i++ {
		v := int16(i%int(2*turbo.LLRLimit-1)) - (turbo.LLRLimit - 1)
		w.Sys[i], w.P1[i], w.P2[i] = v, -v, v/2
	}
	for i := 0; i < 3; i++ {
		w.TailSys[i], w.TailP1[i] = int16(i+1), int16(-i)
	}
	bd, err := decoderFor(c, p.Packed)
	if err != nil {
		return []*turbo.LLRWord{w}
	}
	for b := 0; b < bd.Lanes(); b++ {
		words = append(words, w.Clone())
	}
	return words
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		n, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad block size %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -ks")
	}
	return out, nil
}

func parsePacked(s string) ([]bool, error) {
	switch s {
	case "packed":
		return []bool{true}, nil
	case "block":
		return []bool{false}, nil
	case "both":
		return []bool{true, false}, nil
	}
	return nil, fmt.Errorf("-packed must be packed, block or both (got %q)", s)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vrantune:", err)
	os.Exit(1)
}
