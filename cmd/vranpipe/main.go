// Command vranpipe pushes one packet through the full vRAN pipeline and
// prints the per-stage processing report: a one-shot view of what the
// experiment harness sweeps.
//
// Usage:
//
//	vranpipe [-dir uplink|downlink] [-bytes 1500] [-proto udp|tcp]
//	         [-width 128|256|512] [-mech original|apcm] [-iters 2]
package main

import (
	"flag"
	"fmt"
	"os"

	"vransim/internal/cliutil"
	"vransim/internal/core"
	"vransim/internal/pipeline"
)

func main() {
	dir := flag.String("dir", "uplink", "uplink or downlink")
	bytes := flag.Int("bytes", 512, "IP packet size")
	proto := flag.String("proto", "udp", cliutil.ProtoHelp)
	width := flag.Int("width", 128, cliutil.WidthHelp)
	mech := flag.String("mech", "apcm", cliutil.MechHelp)
	iters := flag.Int("iters", 2, "turbo decoder iterations")
	flag.Parse()

	w, err := cliutil.ParseWidth(*width)
	if err != nil {
		fatal("%v", err)
	}
	s, err := cliutil.ParseStrategy(*mech)
	if err != nil {
		fatal("%v", err)
	}
	p, err := cliutil.ParseProto(*proto)
	if err != nil {
		fatal("%v", err)
	}

	cfg := pipeline.DefaultConfig(w, s, p, *bytes)
	cfg.Iters = *iters
	var res *pipeline.Result
	switch *dir {
	case "uplink":
		res, err = pipeline.RunUplink(cfg)
	case "downlink":
		res, err = pipeline.RunDownlink(cfg)
	default:
		fatal("dir must be uplink or downlink")
	}
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("%s %s %dB packet, %s, %s mechanism, %d iterations\n",
		*dir, p, *bytes, w, core.ByStrategy(s).Name(), *iters)
	fmt.Printf("transport block: %d bytes, %d code block(s), %d info bits\n",
		res.TBBytes, res.CodeBlocks, res.InfoBits)
	fmt.Printf("CRC ok: %v   payload delivered intact: %v\n\n", res.CRCOK, res.PayloadOK)
	fmt.Printf("%-13s %10s %10s %8s %7s  %s\n", "stage", "µops", "cycles", "µs", "IPC", "top-down")
	for _, st := range res.Stages {
		fmt.Printf("%-13s %10d %10d %8.2f %7.2f  %s\n",
			st.Name, st.Insts, st.Cycles, st.Us, st.IPC, st.TD.String())
	}
	fmt.Printf("\ntotal: %d cycles, %.2f µs end-to-end (incl. EPC path)\n",
		res.Total.Cycles, res.TotalUs)
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vranpipe: "+format+"\n", args...)
	os.Exit(1)
}
