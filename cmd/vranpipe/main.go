// Command vranpipe pushes one packet through the full vRAN pipeline and
// prints the per-stage processing report: a one-shot view of what the
// experiment harness sweeps.
//
// Usage:
//
//	vranpipe [-dir uplink|downlink] [-bytes 1500] [-proto udp|tcp]
//	         [-width 128|256|512] [-mech original|apcm] [-iters 2] [-json]
//
// With -json the per-stage report is emitted as machine-readable JSON
// using the same stage names the serving telemetry exports, so an
// offline run can be diffed against a live /metrics or /snapshot
// scrape.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"vransim/internal/cliutil"
	"vransim/internal/core"
	"vransim/internal/pipeline"
)

func main() {
	dir := flag.String("dir", "uplink", "uplink or downlink")
	bytes := flag.Int("bytes", 512, "IP packet size")
	proto := flag.String("proto", "udp", cliutil.ProtoHelp)
	width := flag.Int("width", 128, cliutil.WidthHelp)
	mech := flag.String("mech", "apcm", cliutil.MechHelp)
	iters := flag.Int("iters", 2, "turbo decoder iterations")
	asJSON := flag.Bool("json", false, "emit the report as JSON (stage names shared with the live telemetry)")
	flag.Parse()

	w, err := cliutil.ParseWidth(*width)
	if err != nil {
		fatal("%v", err)
	}
	s, err := cliutil.ParseStrategy(*mech)
	if err != nil {
		fatal("%v", err)
	}
	p, err := cliutil.ParseProto(*proto)
	if err != nil {
		fatal("%v", err)
	}

	cfg := pipeline.DefaultConfig(w, s, p, *bytes)
	cfg.Iters = *iters
	var res *pipeline.Result
	switch *dir {
	case "uplink":
		res, err = pipeline.RunUplink(cfg)
	case "downlink":
		res, err = pipeline.RunDownlink(cfg)
	default:
		fatal("dir must be uplink or downlink")
	}
	if err != nil {
		fatal("%v", err)
	}

	if *asJSON {
		emitJSON(*dir, p.String(), *bytes, w.String(), core.ByStrategy(s).Name(), *iters, res)
		return
	}

	fmt.Printf("%s %s %dB packet, %s, %s mechanism, %d iterations\n",
		*dir, p, *bytes, w, core.ByStrategy(s).Name(), *iters)
	fmt.Printf("transport block: %d bytes, %d code block(s), %d info bits\n",
		res.TBBytes, res.CodeBlocks, res.InfoBits)
	fmt.Printf("CRC ok: %v   payload delivered intact: %v\n\n", res.CRCOK, res.PayloadOK)
	fmt.Printf("%-13s %10s %10s %8s %7s  %s\n", "stage", "µops", "cycles", "µs", "IPC", "top-down")
	for _, st := range res.Stages {
		fmt.Printf("%-13s %10d %10d %8.2f %7.2f  %s\n",
			st.Name, st.Insts, st.Cycles, st.Us, st.IPC, st.TD.String())
	}
	fmt.Printf("\ntotal: %d cycles, %.2f µs end-to-end (incl. EPC path)\n",
		res.Total.Cycles, res.TotalUs)
}

// jsonStage is one stage row of the JSON report. Stage names match the
// text report and the serving tracer's vocabulary exactly.
type jsonStage struct {
	Stage   string  `json:"stage"`
	Uops    int     `json:"uops"`
	Cycles  int64   `json:"cycles"`
	Us      float64 `json:"us"`
	IPC     float64 `json:"ipc"`
	StoreBW float64 `json:"store_bits_per_cycle"`

	Retiring      float64 `json:"retiring"`
	FrontendBound float64 `json:"frontend_bound"`
	BadSpec       float64 `json:"bad_speculation"`
	BackendBound  float64 `json:"backend_bound"`
	CoreBound     float64 `json:"core_bound"`
	MemoryBound   float64 `json:"memory_bound"`
}

// jsonReport is the machine-readable mirror of the text report.
type jsonReport struct {
	Dir       string `json:"dir"`
	Proto     string `json:"proto"`
	Bytes     int    `json:"packet_bytes"`
	Width     string `json:"width"`
	Mechanism string `json:"mechanism"`
	Iters     int    `json:"iters"`

	TBBytes    int  `json:"tb_bytes"`
	CodeBlocks int  `json:"code_blocks"`
	InfoBits   int  `json:"info_bits"`
	CRCOK      bool `json:"crc_ok"`
	PayloadOK  bool `json:"payload_ok"`

	Stages      []jsonStage `json:"stages"`
	TotalCycles int64       `json:"total_cycles"`
	TotalUs     float64     `json:"total_us"`
	TotalIPC    float64     `json:"total_ipc"`
}

func emitJSON(dir, proto string, bytes int, width, mech string, iters int, res *pipeline.Result) {
	rep := jsonReport{
		Dir: dir, Proto: proto, Bytes: bytes, Width: width, Mechanism: mech, Iters: iters,
		TBBytes: res.TBBytes, CodeBlocks: res.CodeBlocks, InfoBits: res.InfoBits,
		CRCOK: res.CRCOK, PayloadOK: res.PayloadOK,
		TotalCycles: res.Total.Cycles, TotalUs: res.TotalUs, TotalIPC: res.Total.IPC(),
	}
	for _, st := range res.Stages {
		rep.Stages = append(rep.Stages, jsonStage{
			Stage: st.Name, Uops: st.Insts, Cycles: st.Cycles, Us: st.Us, IPC: st.IPC,
			StoreBW:       st.StoreBW,
			Retiring:      st.TD.Retiring,
			FrontendBound: st.TD.FrontendBound,
			BadSpec:       st.TD.BadSpec,
			BackendBound:  st.TD.BackendBound,
			CoreBound:     st.TD.CoreBound,
			MemoryBound:   st.TD.MemoryBound,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vranpipe: "+format+"\n", args...)
	os.Exit(1)
}
