// Command vrancoord is the DU-side coordinator of a distributed vRAN
// deployment: it dials a fleet of vranshard workers over TCP, owns the
// cell→shard route, streams synthetic traffic through the fronthaul,
// optionally migrates a live cell mid-run (or lets the skew rebalancer
// do it), and reports the fleet-aggregated ledger at the end.
//
// Usage:
//
//	vrancoord -shards 127.0.0.1:7101,127.0.0.1:7102
//	          [-cells 4] [-k 40] [-per-tti 8] [-ttis 400] [-tti 1ms]
//	          [-deadline 10ms] [-seed 1] [-admin :9190] [-hold 0s]
//	          [-migrate-cell -1] [-migrate-at -1]
//	          [-rebalance-every 0] [-rebalance-skew 32] …
//	          [-chaos] [-chaos-linkdrop 0.02] …
//
// Each shard gets two connections: a data link (the lossy U-plane,
// where -chaos-link* faults apply) and a control link (the reliable
// M-plane carrying snapshot and migration RPCs). Traffic is -per-tti
// blocks per TTI, round-robined across cells with distinct (UE, HARQ
// process) pairs per concurrently-live block. With -admin the
// coordinator exposes /metrics: the fleet-aggregated vran_* families
// plus the vran_shard_* routing/migration/link overlay; -hold keeps the
// endpoint up after the run for scrapers. The process exits non-zero if
// the fleet ledger does not balance (accepted ≠ delivered + terminal
// drops after settling).
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"time"

	"vransim/internal/chaos"
	"vransim/internal/cliutil"
	"vransim/internal/fronthaul"
	"vransim/internal/ran"
	"vransim/internal/shard"
	"vransim/internal/telemetry"
)

func main() {
	shards := flag.String("shards", "", "comma-separated vranshard addresses (required)")
	cells := flag.Int("cells", 4, "fleet-wide cell count (must match the workers' -cells)")
	k := flag.Int("k", 40, "turbo code block size")
	perTTI := flag.Int("per-tti", 8, "blocks submitted per TTI (round-robin across cells)")
	ttis := flag.Int("ttis", 400, "run horizon in TTIs")
	tti := flag.Duration("tti", time.Millisecond, "TTI length")
	deadline := flag.Duration("deadline", 10*time.Millisecond, "per-block budget hint stamped into data frames")
	seed := flag.Int64("seed", 1, "traffic and chaos seed")
	admin := flag.String("admin", "", "admin HTTP listen address (e.g. :9190; empty disables)")
	hold := flag.Duration("hold", 0, "keep the admin endpoint up this long after the run")
	migrateCell := flag.Int("migrate-cell", -1, "cell to force-migrate mid-run (-1 disables)")
	migrateAt := flag.Int("migrate-at", -1, "TTI index of the forced migration (-1: half the horizon)")
	traceSample := flag.Int("trace-sample", 1, "trace every Nth submission end to end (0 disables tracing)")
	sloTarget := flag.Duration("slo-target", 0, "SLO latency target (0: the -deadline value)")
	sloObjective := flag.Float64("slo-objective", 0.999, "SLO success objective (fraction of blocks delivered within target)")
	sloWindow := flag.Duration("slo-window", time.Minute, "fast burn-rate window (slow window is 10x)")
	connectTimeout := flag.Duration("connect-timeout", 10*time.Second, "per-shard dial budget (retries until it expires)")
	settleTimeout := flag.Duration("settle", 30*time.Second, "post-traffic settle budget")
	rb := cliutil.RegisterRebalance(flag.CommandLine)
	cf := cliutil.RegisterChaos(flag.CommandLine)
	flag.Parse()

	addrs, err := cliutil.ParseShardAddrs(*shards)
	if err != nil {
		fatal("-shards: %v", err)
	}
	inj := cf.Injector(*seed)

	// Two links per shard: the chaos-faulted data plane and the clean
	// control plane. Workers may still be starting — retry the dials.
	conns := make([]*shard.ShardConn, len(addrs))
	for i, addr := range addrs {
		data, err := dialRetry(addr, *connectTimeout)
		if err != nil {
			fatal("shard %s: %v", addr, err)
		}
		ctrl, err := dialRetry(addr, *connectTimeout)
		if err != nil {
			fatal("shard %s: %v", addr, err)
		}
		conns[i] = &shard.ShardConn{
			Name: addr,
			Data: fronthaul.NewLink(data, inj),
			Ctrl: fronthaul.NewLink(ctrl, nil),
		}
	}

	coord, err := shard.NewCoordinator(shard.Config{
		Cells: *cells, Deadline: *deadline, Rebalance: rb.Config(),
		Trace: shard.TraceConfig{
			Sample: *traceSample,
			SLO: telemetry.SLOConfig{
				Target: *sloTarget, Objective: *sloObjective, Fast: *sloWindow,
			},
		},
	}, conns)
	if err != nil {
		fatal("%v", err)
	}

	if *admin != "" {
		srv := coord.MountAdmin(*admin)
		if err := srv.Start(); err != nil {
			fatal("admin endpoint: %v", err)
		}
		fmt.Printf("admin endpoint on %s\n", srv.Addr())
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}

	pool, err := shard.NewCRCPool(*k, 128, 24, rand.New(rand.NewSource(*seed)))
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("vrancoord: %d cells over %d shards, %d blocks/TTI, %d TTIs of %v, K=%d\n",
		*cells, len(addrs), *perTTI, *ttis, *tti, *k)

	migAt := *migrateAt
	if *migrateCell >= 0 && migAt < 0 {
		migAt = *ttis / 2
	}
	var offered uint64
	idx := 0
	for t := 0; t < *ttis; t++ {
		for j := 0; j < *perTTI; j++ {
			cell := idx % *cells
			w, _ := pool.Get(idx)
			// Distinct (UE, process) per concurrently-live block of a
			// cell, as stop-and-wait HARQ requires.
			ue := (idx / *cells) % 8
			proc := (idx / (*cells * 8)) % 8
			if err := coord.Submit(cell, ue, proc, pool.K, w); err != nil {
				fatal("submit: %v", err)
			}
			offered++
			idx++
		}
		if *migrateCell >= 0 && t == migAt {
			to := (coord.Route(*migrateCell) + 1) % coord.Shards()
			if err := coord.MigrateCell(*migrateCell, to, 5*time.Second); err != nil {
				fatal("migration: %v", err)
			}
			fmt.Printf("[tti %d] migrated cell %d to shard %d\n", t, *migrateCell, to)
		}
		time.Sleep(*tti)
	}

	agg, per, err := settle(coord, *settleTimeout)
	if err != nil {
		fatal("%v", err)
	}
	report(coord, agg, per, offered, inj)

	terminal := agg.Delivered + agg.Drops[ran.DropExpired] + agg.Drops[ran.DropLate] +
		agg.Drops[ran.DropHARQ] + agg.Drops[ran.DropShutdown]
	if *hold > 0 {
		fmt.Printf("holding admin endpoint for %v\n", *hold)
		time.Sleep(*hold)
	}
	coord.Stop()
	if agg.Accepted != terminal {
		fatal("fleet ledger broken: accepted %d != terminal %d", agg.Accepted, terminal)
	}
}

// dialRetry dials addr until it succeeds or the budget expires — shard
// workers may come up after the coordinator.
func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// settle polls the fleet until every accepted block is terminal and the
// retry queues are empty, stable across several polls (frames may still
// be draining out of socket buffers when traffic stops).
func settle(c *shard.Coordinator, budget time.Duration) (*ran.Snapshot, []*ran.Snapshot, error) {
	deadline := time.Now().Add(budget)
	stable := 0
	var last uint64
	for {
		agg, per, err := c.FleetSnapshot()
		if err != nil {
			return nil, nil, err
		}
		terminal := agg.Delivered + agg.Drops[ran.DropExpired] + agg.Drops[ran.DropLate] +
			agg.Drops[ran.DropHARQ] + agg.Drops[ran.DropShutdown]
		if terminal >= agg.Accepted && agg.RetryDepth == 0 {
			if agg.Accepted == last {
				if stable++; stable >= 5 {
					return agg, per, nil
				}
			} else {
				stable = 0
			}
			last = agg.Accepted
		} else {
			stable = 0
		}
		if time.Now().After(deadline) {
			return nil, nil, fmt.Errorf("fleet did not settle in %v: accepted %d, terminal %d, retry %d",
				budget, agg.Accepted, terminal, agg.RetryDepth)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func report(c *shard.Coordinator, agg *ran.Snapshot, per []*ran.Snapshot, offered uint64, inj *chaos.Injector) {
	fmt.Printf("\n===== fleet report =====\n")
	fmt.Printf("%-24s %10s %10s %10s %8s\n", "shard", "accepted", "delivered", "dropped", "cells")
	for i, s := range per {
		owned := 0
		for cell := 0; cell < len(s.Cells); cell++ {
			if c.Route(cell) == i {
				owned++
			}
		}
		fmt.Printf("%-24d %10d %10d %10d %8d\n", i, s.Accepted, s.Delivered, s.Dropped(), owned)
	}
	fmt.Printf("\noffered %d, accepted %d, delivered %d (fleet goodput %.2f Mbps, p99 %v)\n",
		offered, agg.Accepted, agg.Delivered, agg.GoodputMbps,
		agg.LatencyP99.Round(10*time.Microsecond))
	fmt.Printf("drops by cause: ")
	for cause, n := range agg.DropsByCause() {
		fmt.Printf("%s=%d ", cause, n)
	}
	fmt.Println()
	if agg.HARQRetries > 0 {
		fmt.Printf("HARQ: %d retries, %d recovered\n", agg.HARQRetries, agg.HARQRecovered)
	}
	// Per-class fleet view, present when any worker runs class-aware
	// (-class on the vranshard command line).
	if agg.Classes[ran.ClassURLLC].Accepted > 0 || agg.Steals > 0 || agg.ShedLevel > 0 {
		fmt.Printf("\n%-6s %10s %10s %10s %10s %10s\n", "class", "accepted", "delivered", "dropped", "shed", "p99")
		for cl := ran.Class(0); cl < ran.NumClasses; cl++ {
			ks := agg.Classes[cl]
			fmt.Printf("%-6s %10d %10d %10d %10d %10v\n", cl, ks.Accepted, ks.Delivered, ks.Dropped(),
				ks.Drops[ran.DropShed], ks.LatencyP99.Round(10*time.Microsecond))
		}
		fmt.Printf("worker steals %d, worst shed level %d\n", agg.Steals, agg.ShedLevel)
	}
	if inj != nil {
		fmt.Printf("chaos: ")
		for _, ct := range inj.Counters() {
			fmt.Printf("%s=%d/%d ", ct.Site, ct.Fires, ct.Trials)
		}
		fmt.Println("(injected/trials)")
	}
	if col := c.Collector(); col.SpanCount() > 0 {
		fmt.Printf("\ntraces: %d spans merged\n", col.SpanCount())
		fmt.Printf("%-12s %8s %12s %12s %12s\n", "hop", "spans", "mean", "p99", "budget")
		sums := col.HopSummaries()
		var meanSum time.Duration
		for _, h := range sums {
			meanSum += time.Duration(float64(h.Mean) * float64(h.Count))
		}
		for _, h := range sums {
			if h.Count == 0 {
				continue
			}
			share := 0.0
			if meanSum > 0 {
				share = float64(h.Mean) * float64(h.Count) / float64(meanSum)
			}
			fmt.Printf("%-12s %8d %12v %12v %11.1f%%\n", h.Stage, h.Count,
				h.Mean.Round(time.Microsecond), h.P99.Round(time.Microsecond), 100*share)
		}
		slo := col.SLO()
		good, bad := slo.Totals()
		fmt.Printf("SLO: target %v objective %.4f — %d good / %d bad, fast burn %.2f, budget remaining %.2f\n",
			slo.Config().Target, slo.Config().Objective, good, bad,
			slo.BurnRate(slo.Config().Fast), slo.BudgetRemaining(slo.Config().Fast))
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "vrancoord: "+format+"\n", args...)
	os.Exit(1)
}
