// Benchmarks regenerating the paper's evaluation artifacts, one per
// table and figure. They report the *simulated* metrics (cycles, IPC,
// backend-bound share, bits/cycle, µs) through b.ReportMetric, so
// `go test -bench=. -benchmem` prints the same quantities the paper
// plots; wall-clock ns/op measures only the simulator itself.
package vransim_test

import (
	"fmt"
	"testing"

	"vransim/internal/bench"
	"vransim/internal/cache"
	"vransim/internal/core"
	"vransim/internal/pipeline"
	"vransim/internal/simd"
	"vransim/internal/transport"
	"vransim/internal/uarch"
)

// BenchmarkTable1CacheHierarchies measures raw hierarchy lookup cost and
// reports each node's geometry-driven average load latency over a 2 MB
// pseudo-random working set (the Table 1 contrast).
func BenchmarkTable1CacheHierarchies(b *testing.B) {
	for _, cfg := range []cache.Config{cache.WimpyNode, cache.BeefyNode} {
		b.Run(cfg.Name, func(b *testing.B) {
			h := cache.NewHierarchy(cfg)
			var addr, total int64
			for i := 0; i < b.N; i++ {
				addr = (addr*6364136223846793005 + 1442695040888963407) % (2 << 20)
				if addr < 0 {
					addr = -addr
				}
				total += int64(h.Load(addr))
			}
			b.ReportMetric(float64(total)/float64(b.N), "cycles/load")
		})
	}
}

// benchPipeline runs one uplink/downlink packet per iteration and
// reports the simulated per-packet time.
func benchPipeline(b *testing.B, downlink bool, strat core.Strategy) {
	cfg := pipeline.DefaultConfig(simd.W128, strat, transport.UDP, 256)
	cfg.Iters = 1
	var us float64
	for i := 0; i < b.N; i++ {
		var res *pipeline.Result
		var err error
		if downlink {
			res, err = pipeline.RunDownlink(cfg)
		} else {
			res, err = pipeline.RunUplink(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		if !res.PayloadOK {
			b.Fatal("payload corrupted")
		}
		us = res.TotalUs
	}
	b.ReportMetric(us, "sim-µs/packet")
}

// BenchmarkFig3UplinkModules regenerates the uplink profile workload.
func BenchmarkFig3UplinkModules(b *testing.B) {
	benchPipeline(b, false, core.StrategyExtract)
}

// BenchmarkFig4DownlinkModules regenerates the downlink profile workload.
func BenchmarkFig4DownlinkModules(b *testing.B) {
	benchPipeline(b, true, core.StrategyExtract)
}

// BenchmarkFig5UplinkTopDown reports the uplink turbo-decoding module's
// backend-bound share (the Figure 5 hotspot).
func BenchmarkFig5UplinkTopDown(b *testing.B) {
	cfg := pipeline.DefaultConfig(simd.W128, core.StrategyExtract, transport.UDP, 256)
	cfg.Iters = 1
	var be float64
	for i := 0; i < b.N; i++ {
		res, err := pipeline.RunUplink(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if st, ok := res.Stage("arrangement"); ok {
			be = st.TD.BackendBound
		}
	}
	b.ReportMetric(100*be, "arr-backend-%")
}

// BenchmarkFig6DownlinkTopDown reports the downlink scrambling module's
// retiring share (a near-ideal module in Figure 6).
func BenchmarkFig6DownlinkTopDown(b *testing.B) {
	cfg := pipeline.DefaultConfig(simd.W128, core.StrategyExtract, transport.UDP, 256)
	cfg.Iters = 1
	var ret float64
	for i := 0; i < b.N; i++ {
		res, err := pipeline.RunDownlink(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if st, ok := res.Stage("scramble"); ok {
			ret = st.TD.Retiring
		}
	}
	b.ReportMetric(100*ret, "scramble-retiring-%")
}

// BenchmarkFig7InstrClasses reports per-kernel IPC on both platforms.
func BenchmarkFig7InstrClasses(b *testing.B) {
	kinds := []bench.KernelKind{
		bench.KernelPAdds, bench.KernelPSubs, bench.KernelPMax,
		bench.KernelPExtract, bench.KernelScalarOFDM,
	}
	for _, k := range kinds {
		for _, p := range []uarch.Platform{uarch.WimpyPlatform(), uarch.BeefyPlatform()} {
			b.Run(fmt.Sprintf("%s/%s", k, p.Caches.Name), func(b *testing.B) {
				insts := bench.BuildKernel(k, simd.W128, 2000, 2<<20)
				var ipc float64
				for i := 0; i < b.N; i++ {
					ipc = bench.SimKernel(insts, p).IPC()
				}
				b.ReportMetric(ipc, "sim-IPC")
			})
		}
	}
}

// BenchmarkFig8Bandwidth reports the arrangement's store bandwidth per
// width and mechanism.
func BenchmarkFig8Bandwidth(b *testing.B) {
	for _, w := range simd.Widths {
		for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
			b.Run(fmt.Sprintf("%s/%s", w, core.ByStrategy(s).Name()), func(b *testing.B) {
				insts := bench.ArrangeWorkload(s, w, 2048)
				var bw float64
				for i := 0; i < b.N; i++ {
					bw = bench.SimKernel(insts, uarch.WimpyPlatform()).StoreBitsPerCycle()
				}
				b.ReportMetric(bw, "bits/cycle")
			})
		}
	}
}

// BenchmarkFig9DecoderWidths reports the arrangement share of decoding
// per width and mechanism.
func BenchmarkFig9DecoderWidths(b *testing.B) {
	for _, w := range simd.Widths {
		for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
			b.Run(fmt.Sprintf("%s/%s", w, core.ByStrategy(s).Name()), func(b *testing.B) {
				var share float64
				for i := 0; i < b.N; i++ {
					ph, err := bench.DecodePhases(s, w, 512, 1)
					if err != nil {
						b.Fatal(err)
					}
					share = ph.Us("arrangement") / ph.TotalUs()
				}
				b.ReportMetric(100*share, "arr-share-%")
			})
		}
	}
}

// BenchmarkFig13PacketLatency reports simulated per-packet processing
// time for the Figure 13 sweep corners.
func BenchmarkFig13PacketLatency(b *testing.B) {
	for _, proto := range []transport.Proto{transport.UDP, transport.TCP} {
		for _, size := range []int{256, 1024} {
			for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
				b.Run(fmt.Sprintf("%s/%dB/%s", proto, size, core.ByStrategy(s).Name()), func(b *testing.B) {
					cfg := pipeline.DefaultConfig(simd.W128, s, proto, size)
					cfg.Iters = 1
					var us float64
					for i := 0; i < b.N; i++ {
						res, err := pipeline.RunUplink(cfg)
						if err != nil {
							b.Fatal(err)
						}
						us = res.TotalUs
					}
					b.ReportMetric(us, "sim-µs/packet")
				})
			}
		}
	}
}

// BenchmarkFig14Arrangement reports the arrangement CPU-time reduction
// per width.
func BenchmarkFig14Arrangement(b *testing.B) {
	for _, w := range simd.Widths {
		b.Run(w.String(), func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				po, err := bench.DecodePhases(core.StrategyExtract, w, 512, 1)
				if err != nil {
					b.Fatal(err)
				}
				pa, err := bench.DecodePhases(core.StrategyAPCM, w, 512, 1)
				if err != nil {
					b.Fatal(err)
				}
				red = 1 - pa.Us("arrangement")/po.Us("arrangement")
			}
			b.ReportMetric(100*red, "arr-reduction-%")
		})
	}
}

// BenchmarkFig15TopDown reports the arrangement backend-bound share per
// mechanism.
func BenchmarkFig15TopDown(b *testing.B) {
	for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
		b.Run(core.ByStrategy(s).Name(), func(b *testing.B) {
			insts := bench.ArrangeWorkload(s, simd.W128, 2048)
			var be float64
			for i := 0; i < b.N; i++ {
				be = bench.SimKernel(insts, uarch.WimpyPlatform()).TopDown.BackendBound
			}
			b.ReportMetric(100*be, "backend-%")
		})
	}
}

// BenchmarkFig16Throughput reports simulated Mbps per core.
func BenchmarkFig16Throughput(b *testing.B) {
	for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
		b.Run(core.ByStrategy(s).Name(), func(b *testing.B) {
			cfg := pipeline.DefaultConfig(simd.W128, s, transport.UDP, 512)
			cfg.Iters = 1
			var mbps float64
			for i := 0; i < b.N; i++ {
				res, err := pipeline.RunUplink(cfg)
				if err != nil {
					b.Fatal(err)
				}
				mbps = float64(512*8) / res.TotalUs
			}
			b.ReportMetric(mbps, "sim-Mbps/core")
		})
	}
}

// BenchmarkArrangeKernels measures the raw Go-side speed of the
// arrangement emulation itself (how fast the harness runs, not the
// simulated machine).
func BenchmarkArrangeKernels(b *testing.B) {
	for _, s := range []core.Strategy{core.StrategyExtract, core.StrategyAPCM} {
		b.Run(core.ByStrategy(s).Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.ArrangeWorkload(s, simd.W128, 1024)
			}
		})
	}
}
